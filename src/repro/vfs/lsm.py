"""Linux Security Module framework analog (§4.1).

An LSM can veto any permission the DAC check would grant, based on inode
labels and the subject's ``cred.security`` domain.  The paper's key
compatibility claim is that the PCC memoizes *arbitrary* LSM decisions
safely, because (a) decisions depend only on (cred, inode-label) pairs,
(b) creds are immutable (COW), and (c) label changes go through the
kernel's relabel API, which triggers the same coherence shootdown as a
``chmod`` (see :mod:`repro.core.coherence`).

Two concrete LSMs ship for tests/benchmarks:

* :class:`SELinuxLikeLsm` — type-enforcement over inode labels.
* :class:`PathPrefixLsm` — AppArmor-flavoured: denies subjects access
  below labelled subtrees (labels are placed on directory inodes, so the
  decision is still inode-local and memoizable).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.vfs.cred import Cred
from repro.vfs.inode import Inode


class Lsm:
    """Base LSM: allows everything."""

    name = "null"

    def inode_permission(self, cred: Cred, inode: Inode, mask: int) -> bool:
        """Return False to deny an access DAC would allow."""
        return True

    def cred_label_for_exec(self, cred: Cred, inode: Inode) -> Optional[str]:
        """Domain transition on exec; None keeps the current label."""
        return None


class NullLsm(Lsm):
    """Explicit no-op LSM (the default)."""


class SELinuxLikeLsm(Lsm):
    """Type-enforcement: (domain, type, perm-class) triples must be allowed.

    Unlabelled inodes default to ``default_type``; creds without a
    security label run in ``unconfined`` which is allowed everything.
    """

    name = "selinux-like"

    def __init__(self, default_type: str = "file_t"):
        self.default_type = default_type
        self._allowed: Set[Tuple[str, str, str]] = set()

    def allow(self, domain: str, object_type: str, perm: str) -> None:
        """Add an allow rule; perm is 'read', 'write', or 'search'."""
        self._allowed.add((domain, object_type, perm))

    @staticmethod
    def _perms_for_mask(mask: int):
        from repro.vfs import permissions as perms
        if mask & perms.MAY_READ:
            yield "read"
        if mask & perms.MAY_WRITE:
            yield "write"
        if mask & perms.MAY_EXEC:
            yield "search"

    def inode_permission(self, cred: Cred, inode: Inode, mask: int) -> bool:
        domain = cred.security
        if domain is None or domain == "unconfined":
            return True
        object_type = inode.security or self.default_type
        return all((domain, object_type, perm) in self._allowed
                   for perm in self._perms_for_mask(mask))


class PathPrefixLsm(Lsm):
    """AppArmor-flavoured: per-domain denial of labelled subtrees.

    A directory inode labelled ``X`` is unsearchable for domains that have
    ``deny(domain, X)`` — which removes the whole subtree from their view,
    the way AppArmor profiles confine paths.  Because the label sits on
    the directory inode, the decision remains inode-local.
    """

    name = "path-prefix"

    def __init__(self):
        self._denied: Dict[str, Set[str]] = {}

    def deny(self, domain: str, label: str) -> None:
        self._denied.setdefault(domain, set()).add(label)

    def inode_permission(self, cred: Cred, inode: Inode, mask: int) -> bool:
        domain = cred.security
        if domain is None:
            return True
        label = inode.security
        if label is None:
            return True
        return label not in self._denied.get(domain, ())
