"""Figure 3: principal sources of path lookup latency.

The paper breaks a warm lookup into initialization, permission checking,
path scanning & hashing, hash table lookup, and finalization, for paths
of 1/2/4/8 components, on both kernels.  Baseline: per-component phases
(permission, hash, table lookup) grow linearly with depth.  Optimized:
only scanning/hashing grows; permission checking and table lookup are
constant (one PCC probe, one DLHT probe).
"""

from __future__ import annotations

from typing import Dict

from repro import make_kernel
from repro.bench.harness import Report
from repro.workloads import lmbench

PATHS = [
    ("Path1 (1)", "FFF"),
    ("Path2 (2)", "XXX/FFF"),
    ("Path3 (4)", "XXX/YYY/ZZZ/FFF"),
    ("Path4 (8)", "XXX/YYY/ZZZ/AAA/BBB/CCC/DDD/FFF"),
]

PHASES = ["init", "perm", "hash", "htlookup", "final"]


def _breakdowns(profile: str) -> Dict[str, Dict[str, float]]:
    kernel = make_kernel(profile)
    task = lmbench.prepare_lookup_tree(kernel)
    return {label: lmbench.lookup_breakdown(kernel, task, path)
            for label, path in PATHS}


def run(quick: bool = False) -> Report:
    """Run the experiment; ``quick`` shrinks workload scale."""
    report = Report(
        exp_id="Figure 3",
        title="Lookup latency breakdown by phase (ns)",
        paper_expectation=("baseline: permission checks and hash-table "
                           "lookups grow linearly in components; "
                           "optimized: constant except path hashing"),
        headers=["kernel", "path"] + PHASES + ["lookup total"],
    )
    data = {}
    for profile in ("baseline", "optimized"):
        data[profile] = _breakdowns(profile)
        for label, _path in PATHS:
            phases = data[profile][label]
            total = sum(phases.get(p, 0.0) for p in PHASES)
            report.add_row(profile, label,
                           *[phases.get(p, 0.0) for p in PHASES], total)

    base_1, base_8 = (data["baseline"]["Path1 (1)"],
                      data["baseline"]["Path4 (8)"])
    opt_1, opt_8 = (data["optimized"]["Path1 (1)"],
                    data["optimized"]["Path4 (8)"])
    report.check(
        "baseline permission-check time grows ~linearly (x8 path ≥ 5x)",
        base_8.get("perm", 0) >= 5 * base_1.get("perm", 1),
        f"{base_1.get('perm', 0):.0f} -> {base_8.get('perm', 0):.0f} ns")
    report.check(
        "baseline hash-table time grows ~linearly (x8 path ≥ 5x)",
        base_8.get("htlookup", 0) >= 5 * base_1.get("htlookup", 1))
    report.check(
        "optimized permission-check time is constant in depth",
        abs(opt_8.get("perm", 0) - opt_1.get("perm", 0)) < 1.0,
        f"{opt_1.get('perm', 0):.0f} vs {opt_8.get('perm', 0):.0f} ns")
    report.check(
        "optimized hash-table time is constant in depth",
        abs(opt_8.get("htlookup", 0) - opt_1.get("htlookup", 0)) < 1.0)
    report.check(
        "optimized scanning/hashing still grows with path length",
        opt_8.get("hash", 0) > 2 * opt_1.get("hash", 1))
    return report
