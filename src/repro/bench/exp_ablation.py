"""Feature ablation: which mechanism buys which workload's gain.

DESIGN.md calls out four separable mechanisms — the lookup fastpath
(DLHT+PCC+signatures), directory completeness caching, aggressive
negative dentries, and deep negative dentries.  This experiment enables
them one at a time over the baseline and reruns a representative slice
of the evaluation:

* ``find`` (stat-heavy traversal)       -> mostly fastpath;
* ``updatedb`` (readdir-heavy traversal) -> mostly completeness;
* repeated failing ``stat`` (deep miss)  -> deep negatives;
* ``make`` header probing               -> negative caching + fastpath.
"""

from __future__ import annotations

from repro import errors, make_kernel
from repro.bench.harness import Report, gain_pct
from repro.core.kernel import BASELINE, DcacheConfig
from repro.workloads import apps

CONFIGS = [
    ("baseline", BASELINE),
    ("+fastpath", BASELINE.variant(name="fastpath", fastpath=True)),
    ("+dir-complete", BASELINE.variant(name="complete",
                                       dir_complete=True)),
    ("+fastpath+complete", BASELINE.variant(name="fp+dc", fastpath=True,
                                            dir_complete=True)),
    ("full optimized", BASELINE.variant(name="full", fastpath=True,
                                        dir_complete=True,
                                        aggressive_negative=True,
                                        deep_negative=True)),
]


def _app_time(config: DcacheConfig, factory, scale: str) -> float:
    kernel = make_kernel(config=config)
    app = factory()
    app.tree_scale = scale
    return apps.run_app(kernel, app, warm=True).total_ns


def _deep_miss_time(config: DcacheConfig) -> float:
    """Repeatedly stat a path whose first component is missing."""
    kernel = make_kernel(config=config)
    task = kernel.spawn_task(uid=0, gid=0)
    path = "/gone/sub/dir/file"
    for _ in range(3):
        try:
            kernel.sys.stat(task, path)
        except errors.ENOENT:
            pass
    start = kernel.now_ns
    for _ in range(10):
        try:
            kernel.sys.stat(task, path)
        except errors.ENOENT:
            pass
    return (kernel.now_ns - start) / 10.0


def run(quick: bool = False) -> Report:
    """Run the experiment; ``quick`` shrinks workload scale."""
    scale = "small" if quick else "medium"
    report = Report(
        exp_id="Ablation",
        title="Per-feature contribution (gain % over baseline)",
        paper_expectation=("fastpath drives multi-component-stat gains "
                           "(git diff); completeness drives "
                           "traversal/readdir gains (find, updatedb); "
                           "deep negatives drive repeated-failing-lookup "
                           "gains; features compose"),
        headers=["configuration", "git-diff gain %", "find gain %",
                 "updatedb gain %", "deep-miss stat gain %"],
    )
    results = {}
    for label, config in CONFIGS:
        results[label] = (
            _app_time(config, apps.GitDiffWorkload, scale),
            _app_time(config, apps.FindWorkload, scale),
            _app_time(config, apps.UpdatedbWorkload, scale),
            _deep_miss_time(config),
        )
    base = results["baseline"]
    for label, _config in CONFIGS:
        row = results[label]
        report.add_row(label, *[gain_pct(base[i], row[i])
                                for i in range(4)])

    diff_fp = gain_pct(base[0], results["+fastpath"][0])
    diff_dc = gain_pct(base[0], results["+dir-complete"][0])
    updb_fp = gain_pct(base[2], results["+fastpath"][2])
    updb_dc = gain_pct(base[2], results["+dir-complete"][2])
    deep_full = gain_pct(base[3], results["full optimized"][3])
    deep_fp = gain_pct(base[3], results["+fastpath"][3])
    report.check("fastpath drives the multi-component lstat workload "
                 "(git diff), completeness does not",
                 diff_fp > diff_dc + 2.0,
                 f"fastpath {diff_fp:.1f}% vs complete {diff_dc:.1f}%")
    report.check("completeness contributes more than fastpath to "
                 "updatedb", updb_dc > updb_fp,
                 f"complete {updb_dc:.1f}% vs fastpath {updb_fp:.1f}%")
    report.check("deep negatives unlock fast repeated failing lookups",
                 deep_full > deep_fp + 5.0,
                 f"full {deep_full:.1f}% vs fastpath-only {deep_fp:.1f}%")
    find_fp = gain_pct(base[1], results["+fastpath"][1])
    find_dc = gain_pct(base[1], results["+dir-complete"][1])
    combined = gain_pct(base[1], results["full optimized"][1])
    report.check("features compose (full ≥ best single feature on find)",
                 combined >= max(find_fp, find_dc) - 0.5,
                 f"full {combined:.1f}% vs fp {find_fp:.1f}% / "
                 f"dc {find_dc:.1f}%")
    return report
