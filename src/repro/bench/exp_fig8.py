"""Figure 8: stat/open latency as threads are added.

The paper shows both kernels' read paths scale linearly (flat per-thread
latency) to 12 cores, with the optimized kernel strictly below the
baseline.  Python cannot demonstrate hardware parallelism, so the
single-thread latencies are *measured* on each kernel and projected
through the analytic contention model of :mod:`repro.sim.concurrency`
(lock-free read path: coherence-traffic growth only).
"""

from __future__ import annotations

from repro import make_kernel
from repro.bench.harness import Report
from repro.sim.concurrency import read_latency_curve, writer_latency_curve
from repro.workloads import lmbench

MAX_THREADS = 12
PATH = "XXX/YYY/ZZZ/FFF"


def run(quick: bool = False) -> Report:
    """Run the experiment; ``quick`` shrinks workload scale."""
    report = Report(
        exp_id="Figure 8",
        title="stat/open latency vs thread count (analytic model, us)",
        paper_expectation=("read latency flat as threads grow on both "
                           "kernels; optimized below baseline at every "
                           "thread count; rename contends"),
        headers=["threads", "stat base", "stat opt", "open base",
                 "open opt"],
    )
    single = {}
    for profile in ("baseline", "optimized"):
        kernel = make_kernel(profile)
        task = lmbench.prepare_lookup_tree(kernel)
        single[profile] = (lmbench.measure_stat(kernel, task, PATH),
                           lmbench.measure_open(kernel, task, PATH))
    curves = {
        profile: (read_latency_curve(vals[0], MAX_THREADS),
                  read_latency_curve(vals[1], MAX_THREADS))
        for profile, vals in single.items()
    }
    for t in range(MAX_THREADS):
        report.add_row(t + 1,
                       curves["baseline"][0][t] / 1000,
                       curves["optimized"][0][t] / 1000,
                       curves["baseline"][1][t] / 1000,
                       curves["optimized"][1][t] / 1000)

    base_stat = curves["baseline"][0]
    opt_stat = curves["optimized"][0]
    report.check("read latency stays flat (≤10% growth at 12 threads)",
                 base_stat[-1] <= 1.10 * base_stat[0]
                 and opt_stat[-1] <= 1.10 * opt_stat[0])
    report.check("optimized below baseline at every thread count",
                 all(o < b for o, b in zip(opt_stat, base_stat)))
    # Writers: the paper reports single-file rename at 13 µs (1 core)
    # growing to ~131 µs at 12 contending cores on the optimized kernel,
    # and 18 -> 118 µs on the baseline — "our optimizations do not make
    # this situation worse".  We project the *measured* single-thread
    # rename latencies of both kernels through the writer model.
    writer_single = {}
    for profile in ("baseline", "optimized"):
        kernel = make_kernel(profile)
        task = kernel.spawn_task(uid=0, gid=0)
        fd = kernel.sys.open(task, "/wfile", 0o102)  # O_CREAT|O_RDWR
        kernel.sys.close(task, fd)
        kernel.sys.rename(task, "/wfile", "/wfile2")  # warm
        kernel.sys.rename(task, "/wfile2", "/wfile")
        start = kernel.now_ns
        kernel.sys.rename(task, "/wfile", "/wfile3")
        writer_single[profile] = kernel.now_ns - start
    base_writers = writer_latency_curve(writer_single["baseline"],
                                        MAX_THREADS)
    opt_writers = writer_latency_curve(writer_single["optimized"],
                                       MAX_THREADS)
    report.add_row("rename @12 threads (us)",
                   base_writers[-1] / 1000, opt_writers[-1] / 1000,
                   "-", "-")
    report.check("writers (rename) queue with contention "
                 "(paper: 13 us -> ~131 us)",
                 opt_writers[-1] > 5 * opt_writers[0],
                 f"{opt_writers[0]/1000:.0f} -> "
                 f"{opt_writers[-1]/1000:.0f} us")
    report.check("single-file rename contention is no worse on the "
                 "optimized kernel (within 25%)",
                 opt_writers[-1] <= 1.25 * base_writers[-1],
                 f"opt {opt_writers[-1]/1000:.0f} us vs base "
                 f"{base_writers[-1]/1000:.0f} us at 12 threads")
    report.notes = ("per-thread read latencies are the measured "
                    "single-thread values projected through the "
                    "lock-free-read contention model (GIL prevents a "
                    "native multicore measurement).")
    return report
