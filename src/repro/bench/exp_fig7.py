"""Figure 7: chmod/rename latency on populated directories.

The optimized kernel's deliberate trade-off: directory permission and
structure changes recursively invalidate every cached descendant, so
their cost grows linearly with the cached subtree (≈330 µs at 10,000
descendants in the paper) while the baseline stays ~constant.
"""

from __future__ import annotations

from repro import make_kernel
from repro.bench.harness import Report
from repro.workloads import lmbench

DEPTHS = [0, 1, 2, 3, 4]  # 1, 10, 100, 1k, 10k files
LABELS = ["single file", "depth=1, 10 files", "depth=2, 100 files",
          "depth=3, 1000 files", "depth=4, 10000 files"]


def run(quick: bool = False) -> Report:
    """Run the experiment; ``quick`` shrinks workload scale."""
    depths = DEPTHS[:-1] if quick else DEPTHS
    report = Report(
        exp_id="Figure 7",
        title="chmod / rename latency vs cached subtree size (us)",
        paper_expectation=("baseline ~constant; optimized grows linearly "
                           "with descendants, ~330 us at 10k children; "
                           "slowdown up to ~30,000%"),
        headers=["subtree", "chmod base", "chmod opt", "chmod slowdown %",
                 "rename base", "rename opt", "rename slowdown %",
                 "descendants"],
    )
    results = []
    for depth, label in zip(depths, LABELS):
        base_kernel = make_kernel("baseline")
        opt_kernel = make_kernel("optimized")
        bc, br, _n = lmbench.measure_mutation_latency(base_kernel, depth)
        oc, orn, descendants = lmbench.measure_mutation_latency(
            opt_kernel, depth)
        results.append((label, bc, oc, br, orn, descendants))
        report.add_row(label, bc / 1000, oc / 1000,
                       100.0 * (oc / bc - 1.0), br / 1000, orn / 1000,
                       100.0 * (orn / br - 1.0), descendants)

    small = results[0]
    large = results[-1]
    report.check("baseline mutation cost ~constant across subtree sizes",
                 large[1] < 4 * small[1] and large[3] < 4 * small[3],
                 f"chmod {small[1]:.0f} -> {large[1]:.0f} ns")
    report.check("optimized mutation cost grows with cached descendants",
                 large[2] > 20 * small[2],
                 f"chmod {small[2]:.0f} -> {large[2]:.0f} ns")
    if not quick:
        report.check("10k-descendant mutation lands near paper's ~330 us",
                     100_000 <= large[2] <= 1_500_000,
                     f"chmod {large[2]/1000:.0f} us, "
                     f"rename {large[4]/1000:.0f} us")
    per_dentry = (large[2] - small[2]) / max(1, large[5])
    report.check("per-descendant invalidation cost is tens of ns",
                 10.0 <= per_dentry <= 100.0, f"{per_dentry:.0f} ns")
    return report
