"""§3.3 signature-scheme trade: 2-universal hashing vs a PRF.

The paper selects a 2-universal multilinear hash after finding that no
available 256-bit PRF was fast enough: "creating a 256-bit PRF required a
more elaborate construction that is too expensive.  A more cautious
implementation might favor a PRF to avoid any risk of overlooked side
channels."

We run the Figure 6 component sweep under both schemes.  Expected shape:
the universal hash wins over baseline from ~2 components; the PRF-based
kernel never beats the baseline walk (its per-component cost exceeds the
walk's), exactly the paper's negative result.
"""

from __future__ import annotations

from repro import make_kernel
from repro.bench.harness import Report, gain_pct
from repro.workloads import lmbench

SWEEP = [("1-comp", "FFF"), ("2-comp", "XXX/FFF"),
         ("4-comp", "XXX/YYY/ZZZ/FFF"),
         ("8-comp", "XXX/YYY/ZZZ/AAA/BBB/CCC/DDD/FFF")]


def _measure(profile: str, **overrides):
    kernel = make_kernel(profile, **overrides)
    task = lmbench.prepare_lookup_tree(kernel)
    return {name: lmbench.measure_stat(kernel, task, path)
            for name, path in SWEEP}


def run(quick: bool = False) -> Report:
    """Run the experiment; ``quick`` shrinks workload scale."""
    report = Report(
        exp_id="§3.3 scheme",
        title="stat latency: 2-universal signatures vs PRF signatures",
        paper_expectation=("universal hashing wins with path depth; a "
                           "256-bit PRF is too expensive to improve over "
                           "baseline (the paper's negative result)"),
        headers=["pattern", "baseline ns", "universal ns", "gain %",
                 "prf ns", "prf gain %"],
    )
    base = _measure("baseline")
    universal = _measure("optimized", signature_scheme="universal")
    prf = _measure("optimized", signature_scheme="prf")
    gains = {}
    for name, _path in SWEEP:
        ugain = gain_pct(base[name], universal[name])
        pgain = gain_pct(base[name], prf[name])
        gains[name] = (ugain, pgain)
        report.add_row(name, base[name], universal[name], ugain,
                       prf[name], pgain)
    report.check("universal signatures win at depth (8-comp)",
                 gains["8-comp"][0] > 15.0,
                 f"{gains['8-comp'][0]:.1f}%")
    report.check("the PRF never beats the baseline walk "
                 "(paper: 256-bit PRF too expensive)",
                 all(pgain <= 2.0 for _u, pgain in gains.values()),
                 ", ".join(f"{n}:{p:.1f}%"
                           for n, (_u, p) in gains.items()))
    report.check("the PRF costs more than the universal hash everywhere",
                 all(prf[name] > universal[name] for name, _ in SWEEP))
    report.notes = ("correctness is identical under both schemes (the "
                    "test suite runs the equivalence oracle against a "
                    "PRF-configured kernel); only the latency trade "
                    "differs.")
    return report
