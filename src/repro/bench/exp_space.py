"""§6.1 "Space Overhead": the optimized design's memory cost.

The paper: the dentry grows from 192 to 280 bytes (+46%), each credential
carries a 64 KB PCC, the DLHT adds 2^16 buckets, and "increasing [the
dcache] by 50% is likely within an acceptable fraction of total system
memory".  We populate both kernels with the same tree and report the
per-dentry and total footprints from the structure-size model.
"""

from __future__ import annotations

from repro import make_kernel
from repro.bench.harness import Report
from repro.sim.memory import (BASE_DENTRY_BYTES, FAST_DENTRY_BYTES,
                              measure_kernel)
from repro.workloads.tree import TreeSpec, populate


def run(quick: bool = False) -> Report:
    """Run the experiment; ``quick`` shrinks workload scale."""
    spec = TreeSpec(depth=2, dirs_per_level=4, files_per_dir=10) if quick \
        else TreeSpec(depth=3, dirs_per_level=5, files_per_dir=12)
    report = Report(
        exp_id="§6.1 space",
        title="Directory cache space overhead",
        paper_expectation=("dentry 192 -> 280 bytes (+46%); 64 KB PCC "
                           "per credential; 2^16-bucket DLHT; overall "
                           "~50% growth is the accepted trade"),
        headers=["kernel", "dentries", "bytes/dentry", "PCC KB",
                 "DLHT KB", "total MB", "overhead vs baseline %"],
    )
    reports = {}
    for profile in ("baseline", "optimized"):
        kernel = make_kernel(profile)
        task = kernel.spawn_task(uid=0, gid=0)
        tree = populate(kernel, task, "/src", spec)
        # Walk everything so the optimized kernel populates fast state.
        for path in tree.all_paths:
            kernel.sys.stat(task, path)
            kernel.sys.stat(task, path)
        memory = measure_kernel(kernel)
        reports[profile] = memory
        report.add_row(profile, memory.dentries, memory.bytes_per_dentry,
                       memory.pcc_bytes / 1024,
                       memory.dlht_table_bytes / 1024,
                       memory.total_bytes / (1 << 20),
                       100.0 * memory.overhead_fraction)

    base, opt = reports["baseline"], reports["optimized"]
    report.check("baseline dentries cost exactly 192 bytes",
                 base.bytes_per_dentry == BASE_DENTRY_BYTES)
    report.check("optimized dentries approach the paper's 280 bytes "
                 "(192 + 88 once fast state is populated)",
                 BASE_DENTRY_BYTES < opt.bytes_per_dentry
                 <= BASE_DENTRY_BYTES + FAST_DENTRY_BYTES,
                 f"{opt.bytes_per_dentry:.0f} bytes")
    report.check("per-credential PCC is the paper's 64 KB",
                 opt.pcc_bytes / max(1, opt.pcc_count) == 64 * 1024)
    report.check("total overhead lands near the paper's ~50% band",
                 0.10 <= opt.overhead_fraction <= 0.90,
                 f"{100 * opt.overhead_fraction:.0f}%")
    report.notes = ("overhead depends on cache population: fixed tables "
                    "(DLHT buckets, PCC) amortize as the dcache grows, "
                    "per-dentry fast state does not — the paper's 50% "
                    "figure assumes a populated cache.")
    return report
