"""Figure 9: readdir and mkstemp latency vs directory size.

Directory-completeness caching serves repeated listings from the dcache
(46-74% faster in the paper, more as directories grow) and elides the
compulsory lookup miss of secure temp-file creation (1-8% faster
mkstemp).
"""

from __future__ import annotations

from repro import make_kernel
from repro.bench.harness import Report, gain_pct
from repro.workloads import lmbench

SIZES = [10, 100, 1000, 10000]

#: Paper's measured values (µs) for context.
PAPER_READDIR = {10: (4.2, 2.4), 100: (24.4, 7.9), 1000: (284.0, 73.3),
                 10000: (2885.5, 796.9)}
PAPER_MKSTEMP = {10: (11.7, 11.6), 100: (13.4, 13.1), 1000: (17.4, 15.9),
                 10000: (18.0, 16.6)}


def run(quick: bool = False) -> Report:
    """Run the experiment; ``quick`` shrinks workload scale."""
    sizes = SIZES[:-1] if quick else SIZES
    report = Report(
        exp_id="Figure 9",
        title="readdir / mkstemp latency vs directory size (us)",
        paper_expectation=("readdir 46-74% faster from the dcache; "
                           "mkstemp 1-8% faster via completeness"),
        headers=["files", "readdir base", "readdir opt", "readdir gain %",
                 "paper gain %", "mkstemp base", "mkstemp opt",
                 "mkstemp gain %"],
    )
    readdir_gains = {}
    mkstemp_gains = {}
    for size in sizes:
        values = {}
        for profile in ("baseline", "optimized"):
            kernel = make_kernel(profile)
            values[profile] = (
                lmbench.measure_readdir_latency(kernel, size),
                lmbench.measure_mkstemp_latency(kernel, size),
            )
        r_gain = gain_pct(values["baseline"][0], values["optimized"][0])
        m_gain = gain_pct(values["baseline"][1], values["optimized"][1])
        readdir_gains[size] = r_gain
        mkstemp_gains[size] = m_gain
        paper_base, paper_opt = PAPER_READDIR[size]
        report.add_row(size, values["baseline"][0] / 1000,
                       values["optimized"][0] / 1000, r_gain,
                       gain_pct(paper_base, paper_opt),
                       values["baseline"][1] / 1000,
                       values["optimized"][1] / 1000, m_gain)

    report.check("readdir gains fall in the paper's band (roughly "
                 "40-75%, growing with size)",
                 all(30.0 <= g <= 80.0 for g in readdir_gains.values()),
                 ", ".join(f"{s}:{g:.0f}%"
                           for s, g in readdir_gains.items()))
    report.check("readdir caching helps even 10-entry directories "
                 "(contra the Solaris 1024-entry heuristic)",
                 readdir_gains[10] > 10.0,
                 f"{readdir_gains[10]:.0f}% at 10 entries")
    report.check("mkstemp improves modestly (paper 1-8%)",
                 all(0.0 < g <= 15.0 for g in mkstemp_gains.values()),
                 ", ".join(f"{s}:{g:.1f}%"
                           for s, g in mkstemp_gains.items()))
    return report
