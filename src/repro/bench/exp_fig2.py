"""Figure 2: stat latency of a long path across kernel versions.

The paper plots warm stat latency of the 8-component path
``XXX/YYY/ZZZ/AAA/BBB/CCC/DDD/FFF`` over four years of Linux releases,
plateauing at v3.14's 0.6005 µs; their optimized v3.14 reaches 0.4438 µs
(a 26% improvement).  We cannot rebuild 2010-2015 kernels — the
historical points are reported from the paper as context — but the
reproducible claim is the rightmost pair: optimized vs baseline on the
same substrate.
"""

from __future__ import annotations

from repro import make_kernel
from repro.bench.harness import Report, gain_pct
from repro.workloads import lmbench


def run(quick: bool = False) -> Report:
    """Run the experiment; ``quick`` shrinks workload scale."""
    report = Report(
        exp_id="Figure 2",
        title="Long-path stat latency: baseline vs optimized kernel",
        paper_expectation=("v3.14 baseline 0.6005 us -> optimized "
                           "0.4438 us: 26% faster"),
        headers=["kernel", "stat latency (us)", "source"],
    )
    for label, value in lmbench.FIG2_PAPER_HISTORY[:-1]:
        report.add_row(label, value, "paper (context)")
    measured = {}
    for profile in ("baseline", "optimized"):
        kernel = make_kernel(profile)
        measured[profile] = lmbench.measure_long_path_stat(kernel)
        report.add_row(f"{profile} (ours)", measured[profile] / 1000.0,
                       "measured")
    gain = gain_pct(measured["baseline"], measured["optimized"])
    report.add_row("paper optimized v3.14", 0.4438, "paper (target: -26%)")
    report.check("optimized kernel beats baseline on the 8-component path",
                 measured["optimized"] < measured["baseline"],
                 f"gain={gain:.1f}%")
    report.check("improvement is in the paper's 26% +/- 10pt band",
                 16.0 <= gain <= 36.0, f"gain={gain:.1f}%")
    return report
