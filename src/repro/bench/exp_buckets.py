"""§6.5: hash bucket occupancy of the primary dentry hash table.

The paper measures Linux's statically sized table (262,144 buckets): 58%
of buckets empty, 34% holding one dentry, 7% two, 1% three to ten — and
notes the opportunity cost of static sizing.  With a uniform hash, bucket
occupancy is Poisson(n/m); we reproduce the measurement by hashing a
populated kernel's dentries into the same table geometry and comparing
against both the paper's numbers and the Poisson model.
"""

from __future__ import annotations

import hashlib
import math
from collections import Counter
from typing import Dict

from repro import make_kernel
from repro.bench.harness import Report
from repro.workloads.tree import TreeSpec, populate

#: The paper's measured occupancy on their test system.
PAPER_OCCUPANCY = {0: 0.58, 1: 0.34, 2: 0.07, "3-10": 0.01}


def _bucket_hash(dentry) -> int:
    """Uniform, run-stable stand-in for Linux's (parent, name) hash.

    ``hash((id(parent), name))`` depends on object addresses and the
    per-process string-hash salt, which made this experiment the one
    run-to-run nondeterminism in EXPERIMENTS.md — unacceptable now that
    the parallel engine asserts serial and parallel output are
    byte-identical.  Hashing the canonical path keeps the distribution
    uniform (what the Poisson comparison needs) and deterministic.
    """
    digest = hashlib.blake2b(dentry.path_from_root().encode("utf-8"),
                             digest_size=8).digest()
    return int.from_bytes(digest, "little")


def bucket_occupancy(kernel, buckets: int) -> Dict[object, float]:
    """Fraction of buckets holding 0 / 1 / 2 / 3-10 dentries."""
    counts: Counter = Counter()
    for root in kernel.dcache._roots.values():
        for dentry in root.descendants():
            if dentry.parent is None:
                continue
            counts[_bucket_hash(dentry) % buckets] += 1
    occupied: Counter = Counter(counts.values())
    total_entries = sum(counts.values())
    empty = buckets - len(counts)
    out: Dict[object, float] = {
        0: empty / buckets,
        1: occupied.get(1, 0) / buckets,
        2: occupied.get(2, 0) / buckets,
        "3-10": sum(v for k, v in occupied.items() if 3 <= k <= 10)
        / buckets,
    }
    out["entries"] = total_entries
    return out


def poisson_occupancy(entries: int, buckets: int) -> Dict[object, float]:
    """Ideal uniform-hash occupancy: Poisson(entries/buckets)."""
    lam = entries / buckets
    def pk(k: int) -> float:
        return math.exp(-lam) * lam ** k / math.factorial(k)
    return {0: pk(0), 1: pk(1), 2: pk(2),
            "3-10": sum(pk(k) for k in range(3, 11))}


def run(quick: bool = False) -> Report:
    """Run the experiment; ``quick`` shrinks workload scale."""
    report = Report(
        exp_id="§6.5 buckets",
        title="Primary hash table bucket occupancy",
        paper_expectation=("on the test system: 58% empty, 34% one "
                           "entry, 7% two, 1% three-to-ten — close to "
                           "Poisson for the entry/bucket ratio"),
        headers=["source", "entries/buckets", "empty %", "1 %", "2 %",
                 "3-10 %"],
    )
    # The paper's ratio: 58% empty => lambda = -ln(0.58) ~ 0.545, i.e.
    # ~143k dentries in 262,144 buckets.  We populate a tree and scale
    # the bucket count to hit the same load factor.
    kernel = make_kernel("baseline")
    task = kernel.spawn_task(uid=0, gid=0)
    spec = TreeSpec(depth=2, dirs_per_level=6, files_per_dir=20) if quick \
        else TreeSpec(depth=3, dirs_per_level=6, files_per_dir=24)
    populate(kernel, task, "/src", spec)
    entries = len(kernel.dcache) - 1
    target_lambda = -math.log(PAPER_OCCUPANCY[0])
    buckets = max(16, int(entries / target_lambda))
    measured = bucket_occupancy(kernel, buckets)
    model = poisson_occupancy(entries, buckets)
    report.add_row("paper (262,144 buckets)", "~143k/262k",
                   58.0, 34.0, 7.0, 1.0)
    report.add_row(f"measured ({buckets} buckets)",
                   f"{entries}/{buckets}", 100 * measured[0],
                   100 * measured[1], 100 * measured[2],
                   100 * measured["3-10"])
    report.add_row("Poisson model", f"lambda={entries/buckets:.3f}",
                   100 * model[0], 100 * model[1], 100 * model[2],
                   100 * model["3-10"])

    for klass in (0, 1, 2):
        report.check(
            f"measured {klass}-entry bucket share within 5 points of "
            f"the paper", abs(measured[klass] - PAPER_OCCUPANCY[klass])
            < 0.05,
            f"{100 * measured[klass]:.1f}% vs "
            f"{100 * PAPER_OCCUPANCY[klass]:.0f}%")
    report.check("occupancy matches the Poisson model (uniform hashing)",
                 all(abs(measured[k] - model[k]) < 0.03
                     for k in (0, 1, 2, "3-10")))
    report.notes = ("the paper's static 262,144-bucket table and our "
                    "scaled table share the same load factor; the match "
                    "with Poisson supports §6.5's observation that "
                    "resizable tables could reclaim the empty 58%.")
    return report
