"""Figure 6: stat and open latency across path patterns.

Four variants per pattern: unmodified baseline, optimized fastpath hit,
optimized with forced fastpath miss + slowpath (the worst case), and
Plan 9 lexical dot-dot semantics (for the dot-dot patterns).

Paper's qualitative results:

* gains grow with component count (stat: 3% at one component up to 26%
  at eight; open up to 12%);
* symlink caching improves link-f/link-d by 44/48%;
* forced fastpath misses cost 12-93% over baseline (worst on neg-d);
* Linux dot-dot semantics make the optimized kernel ~31% slower than
  baseline, while lexical semantics win 43-52%.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro import make_kernel
from repro.bench.harness import Report, gain_pct
from repro.workloads import lmbench


def _measure(profile: str, **overrides) -> Dict[str, Tuple[float, float]]:
    kernel = make_kernel(profile, **overrides)
    task = lmbench.prepare_lookup_tree(kernel)
    out = {}
    for name, path in lmbench.PATH_PATTERNS:
        stat_ns = lmbench.measure_stat(kernel, task, path)
        open_ns = (lmbench.measure_open(kernel, task, path)
                   if name in lmbench.POSITIVE_PATTERNS else float("nan"))
        out[name] = (stat_ns, open_ns)
    return out


def run(quick: bool = False) -> Report:
    """Run the experiment; ``quick`` shrinks workload scale."""
    report = Report(
        exp_id="Figure 6",
        title="stat/open latency by path pattern (ns)",
        paper_expectation=("stat gains 3%->26% with depth; open up to "
                           "12%; links +44-48%; forced miss 12-93% "
                           "overhead; lexical dot-dot +43-52%"),
        headers=["pattern", "stat base", "stat opt", "stat gain %",
                 "stat miss+slow", "stat lexical", "open base",
                 "open opt", "open gain %"],
    )
    base = _measure("baseline")
    opt = _measure("optimized")
    miss = _measure("optimized", force_fastpath_miss=True)
    lex = _measure("optimized", lexical_dotdot=True)

    for name, _path in lmbench.PATH_PATTERNS:
        stat_gain = gain_pct(base[name][0], opt[name][0])
        open_gain = gain_pct(base[name][1], opt[name][1])
        report.add_row(name, base[name][0], opt[name][0], stat_gain,
                       miss[name][0], lex[name][0], base[name][1],
                       opt[name][1], open_gain)

    def sgain(name: str) -> float:
        return gain_pct(base[name][0], opt[name][0])

    report.check("gain grows with component count (1 < 2 < 4 < 8)",
                 sgain("1-comp") < sgain("2-comp") < sgain("4-comp")
                 < sgain("8-comp"),
                 f"{sgain('1-comp'):.1f} < {sgain('2-comp'):.1f} < "
                 f"{sgain('4-comp'):.1f} < {sgain('8-comp'):.1f}")
    report.check("8-comp stat gain near paper's 26%",
                 15.0 <= sgain("8-comp") <= 35.0,
                 f"{sgain('8-comp'):.1f}%")
    report.check("8-comp open gain near paper's 12%",
                 6.0 <= gain_pct(base["8-comp"][1], opt["8-comp"][1])
                 <= 20.0)
    report.check("symlink patterns improve substantially (paper 44-48%)",
                 sgain("link-f") > 15.0 and sgain("link-d") > 15.0,
                 f"link-f {sgain('link-f'):.1f}%, "
                 f"link-d {sgain('link-d'):.1f}%")
    for name, _p in lmbench.PATH_PATTERNS:
        if name == "neg-d":
            continue  # slowpath short-circuits before fastpath hashing
        # Dot-dot patterns additionally pay the per-dot-dot extra lookup,
        # so their bound is wider.
        bound = 170.0 if "dotdot" in name else 120.0
        overhead = 100.0 * (miss[name][0] / base[name][0] - 1.0)
        report.check(
            f"forced miss overhead positive and bounded on {name}",
            0.0 <= overhead <= bound, f"{overhead:.0f}%")
    dd_overhead = 100.0 * (opt["4-dotdot"][0] / base["4-dotdot"][0] - 1.0)
    report.check("Linux dot-dot semantics slower than baseline "
                 "(paper ~31%)", 10.0 <= dd_overhead <= 60.0,
                 f"{dd_overhead:.0f}%")
    lex_gain = gain_pct(base["4-dotdot"][0], lex["4-dotdot"][0])
    report.check("lexical dot-dot beats baseline (paper 43-52%)",
                 lex_gain >= 35.0, f"{lex_gain:.0f}%")
    report.notes = ("neg-d remains slower than baseline as in the paper: "
                    "the baseline walk stops at the first missing "
                    "component while the fastpath hashes the whole path.")
    return report


def run_at_variants() -> Report:
    """§6.1's *at() results: fstatat +12%, openat +4% at one component."""
    from repro import O_DIRECTORY, O_RDONLY

    report = Report(
        exp_id="§6.1 *at()",
        title="fstatat/openat single-component latency",
        paper_expectation="fstatat +12%, openat +4% for one component",
        headers=["call", "baseline ns", "optimized ns", "gain %"],
    )
    values = {}
    for profile in ("baseline", "optimized"):
        kernel = make_kernel(profile)
        task = lmbench.prepare_lookup_tree(kernel)
        dirfd = kernel.sys.open(task, "/XXX/YYY/ZZZ",
                                O_RDONLY | O_DIRECTORY)
        values[profile] = lmbench.measure_fstatat(kernel, task, dirfd,
                                                  "FFF")
    gain = gain_pct(values["baseline"], values["optimized"])
    report.add_row("fstatat(dirfd, FFF)", values["baseline"],
                   values["optimized"], gain)
    report.check("fstatat on one component improves (paper +12%)",
                 gain > 0.0, f"{gain:.1f}%")
    return report
