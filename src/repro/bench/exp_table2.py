"""Table 2: application performance with a cold cache.

Same roster as Table 1, but dentries and buffer caches are dropped before
the measured run: device time dominates and the dcache optimizations are
within noise — the paper's point that the changes "are unlikely to do
harm to applications running on a cold system".
"""

from __future__ import annotations

from repro.bench.exp_table1 import run as _run_table1
from repro.bench.harness import Report


def run(quick: bool = False) -> Report:
    """Run Table 2 (the cold-cache variant of Table 1)."""
    return _run_table1(quick=quick, warm=False)
