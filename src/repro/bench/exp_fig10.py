"""Figure 10: Dovecot IMAP throughput (maildir mark/unmark workload).

Marking a message renames its maildir file and forces a directory
re-read; completeness caching plus fast lookups raise server throughput
7.8-12.2% in the paper, with larger mailboxes gaining more.
"""

from __future__ import annotations

from repro import make_kernel
from repro.bench.harness import Report, speedup_pct
from repro.workloads import maildir

SIZES = [500, 1000, 1500, 2000, 2500, 3000]

#: Paper's reported gains per mailbox size bucket.
PAPER_GAINS = [7.8, 9.1, 9.1, 9.5, 12.2, 10.3]


def run(quick: bool = False) -> Report:
    """Run the experiment; ``quick`` shrinks workload scale."""
    sizes = SIZES[:2] if quick else SIZES
    operations = 60 if quick else 150
    report = Report(
        exp_id="Figure 10",
        title="Dovecot maildir throughput (operations/second)",
        paper_expectation=("throughput gains of 7.8-12.2%, larger "
                           "mailboxes gaining more, plateauing ~10%"),
        headers=["mailbox size", "baseline ops/s", "optimized ops/s",
                 "gain %", "paper gain %"],
    )
    gains = []
    for i, size in enumerate(sizes):
        values = {}
        for profile in ("baseline", "optimized"):
            kernel = make_kernel(profile)
            values[profile] = maildir.run_benchmark(kernel, size,
                                                    operations=operations)
        gain = speedup_pct(values["baseline"], values["optimized"])
        gains.append(gain)
        report.add_row(size, values["baseline"], values["optimized"],
                       gain, PAPER_GAINS[i] if i < len(PAPER_GAINS)
                       else "-")
    report.check("optimized wins at every mailbox size",
                 all(g > 0 for g in gains),
                 ", ".join(f"{g:.1f}%" for g in gains))
    report.check("gains in the paper's single-digit-to-low-teens band",
                 all(2.0 <= g <= 20.0 for g in gains))
    if len(gains) > 2:
        report.check("larger mailboxes gain at least as much as small",
                     gains[-1] >= gains[0])
    return report
