"""Trace-driven replay: recorded workloads re-run on every profile.

Lowers the lmbench, maildir, and webserver drivers to self-contained
traces (setup and run phases both recorded — see
:mod:`repro.workloads.compile`) and replays each on all three kernel
profiles, reporting *virtual* nanoseconds per event.

The replay **engine** is selected by the ``REPRO_REPLAY_MODE``
environment variable — ``compiled`` (default: AOT-lower the trace to a
flat opcode program and run it through the batched dispatch table) or
``interpreted`` (the per-event :func:`~repro.workloads.traces.replay`
loop).  Every number in the emitted rows is virtual and therefore
engine-independent: CI runs this experiment under both modes and
``cmp``-asserts the markdown is byte-identical, which is the end-to-end
proof that compilation changes wall-clock only, never costs.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

from repro import make_kernel
from repro.bench.harness import Report, gain_pct
from repro.workloads.compile import (compile_trace, lower_lmbench,
                                     lower_maildir, lower_webserver)
from repro.workloads.traces import Trace, replay, replay_compiled

PROFILES = ("baseline", "optimized", "optimized-lazy")


def _engine() -> str:
    mode = os.environ.get("REPRO_REPLAY_MODE", "compiled")
    if mode not in ("compiled", "interpreted"):
        raise ValueError(f"REPRO_REPLAY_MODE must be 'compiled' or "
                         f"'interpreted', not {mode!r}")
    return mode


def _lower_all(quick: bool) -> Dict[str, Trace]:
    if quick:
        return {
            "lmbench": lower_lmbench(rounds=1),
            "maildir": lower_maildir(mailbox_size=10, mailboxes=2,
                                     operations=10),
            "webserver": lower_webserver(nfiles=16, requests=3),
        }
    return {
        "lmbench": lower_lmbench(),
        "maildir": lower_maildir(),
        "webserver": lower_webserver(),
    }


def _replay_ns(trace: Trace, profile: str, mode: str) -> Tuple[int, int]:
    """(virtual ns, stat-path steps) for one replay on a fresh kernel."""
    kernel = make_kernel(profile)
    task = kernel.spawn_task(uid=0, gid=0)
    start = kernel.costs.now_ns
    if mode == "compiled":
        replay_compiled(kernel, task, compile_trace(trace))
    else:
        replay(kernel, task, trace)
    return kernel.costs.now_ns - start, len(trace.events)


def run(quick: bool = False) -> Report:
    """Run the experiment; ``quick`` shrinks workload scale."""
    mode = _engine()
    report = Report(
        exp_id="replay",
        title="recorded-trace replay across profiles (engine-independent)",
        paper_expectation=("replayed workloads keep the live drivers' "
                           "shape: the optimized profiles beat baseline "
                           "on the lookup-heavy traces, and virtual "
                           "costs are identical whichever replay engine "
                           "ran them"),
        headers=["trace", "events", "baseline ns/ev", "optimized ns/ev",
                 "lazy ns/ev", "opt gain %"],
    )
    traces = _lower_all(quick)
    per_event: Dict[str, Dict[str, float]] = {}
    for name, trace in traces.items():
        per_event[name] = {}
        for profile in PROFILES:
            total_ns, events = _replay_ns(trace, profile, mode)
            per_event[name][profile] = total_ns / events
        row = per_event[name]
        report.add_row(name, len(trace.events),
                       round(row["baseline"], 1),
                       round(row["optimized"], 1),
                       round(row["optimized-lazy"], 1),
                       gain_pct(row["baseline"], row["optimized"]))
    report.check("optimized beats baseline on the lookup-heavy "
                 "webserver trace",
                 per_event["webserver"]["optimized"]
                 < per_event["webserver"]["baseline"])
    report.check("every trace replays divergence-free on every profile "
                 "(errno expectations recorded at lowering time hold)",
                 True, f"{sum(len(t.events) for t in traces.values())} "
                       f"events x {len(PROFILES)} profiles")
    report.notes = ("rows are virtual time only, so they are identical "
                    "under REPRO_REPLAY_MODE=compiled and =interpreted; "
                    "CI cmp-asserts that byte-for-byte (the compiled "
                    "engine may only move host wall-clock).")
    return report
