"""Table 1: real-world application performance, warm cache.

Paper's headline gains: find +19.2%, updatedb +29.1%, du +12.7%,
git diff +9.9%, git status +4.3%; tar/make within noise; rm -2.3%.
Path statistics (hit rate, negative rate, path shapes) are reported per
application as in the paper.
"""

from __future__ import annotations

from typing import Dict

from repro import make_kernel
from repro.bench.harness import Report, gain_pct
from repro.workloads import apps

#: Paper's Table 1 gains (%) for side-by-side context.
PAPER_GAINS = {
    "find": 19.2, "tar xzf": 0.05, "rm -r": -2.32, "make": -0.07,
    "make -j12": -0.34, "du -s": 12.65, "updatedb": 29.12,
    "git status": 4.26, "git diff": 9.89,
}


def run(quick: bool = False, warm: bool = True) -> Report:
    """Run the experiment; ``quick`` shrinks scale, ``warm`` selects the
    Table 1 (warm) vs Table 2 (cold) variant."""
    report = Report(
        exp_id="Table 1" if warm else "Table 2",
        title=("Application execution time, warm cache" if warm
               else "Application execution time, cold cache"),
        paper_expectation=("warm: find +19%, updatedb +29%, du +13%, "
                           "git diff +10%; others near zero"
                           if warm else
                           "cold: all gains/losses within noise; hit "
                           "rates drop (find 38%, du 6%)"),
        headers=["app", "base (ms)", "opt (ms)", "gain %", "paper gain %",
                 "hit %", "neg %", "path bytes", "path comps"],
    )
    gains: Dict[str, float] = {}
    hits: Dict[str, float] = {}
    for factory in apps.ALL_APPS:
        results = {}
        for profile in ("baseline", "optimized"):
            app = factory()
            if quick:
                app.tree_scale = "small"
            kernel = make_kernel(profile)
            results[profile] = apps.run_app(kernel, app, warm=warm)
        base, opt = results["baseline"], results["optimized"]
        gain = gain_pct(base.total_ns, opt.total_ns)
        gains[base.name] = gain
        hits[base.name] = base.component_hit_rate
        report.add_row(base.name, base.total_ns / 1e6, opt.total_ns / 1e6,
                       gain, PAPER_GAINS.get(base.name, "-"),
                       100 * base.component_hit_rate,
                       100 * base.negative_rate, base.avg_path_bytes,
                       base.avg_path_components)

    if warm:
        report.check("metadata-intensive apps gain double digits "
                     "(find/du/updatedb)",
                     gains["find"] > 10 and gains["du -s"] > 10
                     and gains["updatedb"] > 10,
                     f"find {gains['find']:.1f}%, du {gains['du -s']:.1f}%, "
                     f"updatedb {gains['updatedb']:.1f}%")
        report.check("git workloads gain single digits",
                     2.0 < gains["git diff"] < 15.0
                     and 2.0 < gains["git status"] < 15.0)
        report.check("compute/IO-bound apps within noise "
                     "(tar, make, rm within ±5%)",
                     all(abs(gains[n]) < 5.0
                         for n in ("tar xzf", "make", "make -j12", "rm -r")))
        report.check("warm hit rates high (paper 84-100%)",
                     all(rate > 0.70 for rate in hits.values()),
                     ", ".join(f"{n}:{100*r:.0f}%"
                               for n, r in hits.items()))
    else:
        report.check("cold-cache deltas within noise (paper ≤ ~3%, "
                     "device time dominates)",
                     all(abs(g) < 8.0 for g in gains.values()),
                     ", ".join(f"{n}:{g:+.1f}%" for n, g in gains.items()))
        report.check("cold hit rates collapse for scan-heavy apps",
                     hits["find"] < 0.75,
                     f"find {100*hits['find']:.0f}%")
    return report
