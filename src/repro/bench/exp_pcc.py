"""§6.1 PCC working-set sensitivity (ablation).

The paper: "the performance of directory-search workloads is sensitive to
the size of PCC; when we run updatedb on a directory tree that is twice
as large as the PCC, the gain drops from 29% to 16.5% ... an increased
fraction of the first lookup in a newly-visited directory will have to
take the slowpath."

We reproduce the mechanism directly: an updatedb traversal over a
directory-rich tree (thousands of directories, each re-visited across
runs), swept against the PCC capacity.  When the directory working set
exceeds the PCC, re-visits stop hitting memoized prefix checks and the
gain shrinks.
"""

from __future__ import annotations

from repro import make_kernel
from repro.bench.harness import Report, gain_pct
from repro.workloads import apps
from repro.workloads.tree import TreeSpec, populate

#: Wide, directory-rich tree: ~2.7k directories (full mode).
FULL_SPEC = TreeSpec(depth=2, dirs_per_level=52, files_per_dir=1, seed=5)
QUICK_SPEC = TreeSpec(depth=2, dirs_per_level=18, files_per_dir=1, seed=5)

FULL_CAPACITIES = [16384, 4096, 1024, 256]
QUICK_CAPACITIES = [2048, 256, 64]


class _WideUpdatedb(apps.UpdatedbWorkload):
    """updatedb over the directory-rich tree."""

    def __init__(self, spec: TreeSpec):
        self._spec = spec

    def setup(self, kernel, task):
        return populate(kernel, task, "/usr", self._spec)


def _updatedb_time(profile: str, capacity: int, spec: TreeSpec,
                   adaptive: bool = False) -> float:
    kernel = make_kernel(profile, pcc_capacity=capacity,
                         pcc_adaptive=adaptive)
    result = apps.run_app(kernel, _WideUpdatedb(spec), warm=True)
    return result.total_ns


def run(quick: bool = False) -> Report:
    """Run the experiment; ``quick`` shrinks workload scale."""
    spec = QUICK_SPEC if quick else FULL_SPEC
    capacities = QUICK_CAPACITIES if quick else FULL_CAPACITIES
    dirs = sum(spec.dirs_per_level ** level
               for level in range(spec.depth + 1))
    report = Report(
        exp_id="§6.1 PCC",
        title=f"updatedb gain vs PCC capacity ({dirs} directories)",
        paper_expectation=("gain drops from 29% to 16.5% when the tree "
                           "is ~2x the PCC; a production system would "
                           "resize the PCC dynamically"),
        headers=["PCC entries", "baseline (ms)", "optimized (ms)",
                 "gain %"],
    )
    baseline_ns = _updatedb_time("baseline", capacities[0], spec)
    gains = []
    for capacity in capacities:
        optimized_ns = _updatedb_time("optimized", capacity, spec)
        gain = gain_pct(baseline_ns, optimized_ns)
        gains.append(gain)
        report.add_row(capacity, baseline_ns / 1e6, optimized_ns / 1e6,
                       gain)
    report.check("gain shrinks as the PCC starves (roughly monotone)",
                 all(gains[i] >= gains[i + 1] - 1.0
                     for i in range(len(gains) - 1)),
                 ", ".join(f"{c}:{g:.1f}%"
                           for c, g in zip(capacities, gains)))
    report.check("an ample PCC shows a solid gain",
                 gains[0] > 8.0, f"{gains[0]:.1f}%")
    report.check("a starved PCC loses a meaningful share of the gain "
                 "(paper: 29% -> 16.5%)",
                 gains[-1] < gains[0] - 2.0,
                 f"{gains[0]:.1f}% -> {gains[-1]:.1f}%")
    # The paper's future work: a dynamically resized PCC recovers the
    # gain even when it starts starved.
    adaptive_ns = _updatedb_time("optimized", capacities[-1], spec,
                                 adaptive=True)
    adaptive_gain = gain_pct(baseline_ns, adaptive_ns)
    report.add_row(f"{capacities[-1]} (adaptive)", baseline_ns / 1e6,
                   adaptive_ns / 1e6, adaptive_gain)
    report.check("adaptive resizing recovers most of the starved gain "
                 "(the paper's proposed future work)",
                 adaptive_gain >= gains[0] - 2.0,
                 f"{gains[-1]:.1f}% -> {adaptive_gain:.1f}% "
                 f"(ample: {gains[0]:.1f}%)")
    return report
