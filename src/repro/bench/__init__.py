"""Benchmark harness: one module per table/figure of the paper.

Each ``exp_*`` module exposes ``run(quick=False) -> Report`` which
executes the experiment on baseline and optimized kernels and returns a
:class:`~repro.bench.harness.Report` carrying measured rows, the paper's
expectation, and shape checks.  ``python -m repro.bench.report``
regenerates every experiment and renders EXPERIMENTS.md.
"""

from repro.bench.harness import Report, render_table

__all__ = ["Report", "render_table"]
