"""Eager vs. lazy coherence across a multi-tenant fleet (§5.1 at scale).

Sweeps the two knobs that decide the coherence strategy contest in the
shared-cache, multi-tenant setting: the fraction of tenant requests
that *mutate* directories (flag-flip renames and, rarest, whole-mailbox
rename pairs — the §5.1 subtree-invalidation shape) and the number of
tenants sharing the cache.  For each cell a fresh fleet is provisioned
per profile (:mod:`repro.workloads.server_fleet`) and drained with
interleaved per-tenant streams; throughput is requests per *virtual*
second, so the table is deterministic and engine-independent — CI
re-runs it with ``REPRO_CHARGE_PLANS=0`` and ``cmp``-asserts the
markdown is byte-identical, the end-to-end proof that the multi-tenant
charge-plan machinery changes wall-clock only.

The expected shape: read-dominated fleets favour ``optimized`` (eager
shootdowns are off the hot path and lookups skip revalidation), while
mutation-heavy fleets favour ``optimized-lazy`` — every directory
rename under eager coherence pays per-dentry invalidation across the
mailbox subtree, which lazy converts into one epoch bump plus
pay-as-you-go revalidation.  The crossover column records where each
tenant count flips.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

from repro import make_kernel
from repro.bench.harness import Report
from repro.workloads import server_fleet

#: (tenants, total requests per drain) grid rows.
FLEETS: Tuple[Tuple[int, int], ...] = ((4, 48), (8, 96), (16, 144))
FLEETS_QUICK: Tuple[Tuple[int, int], ...] = ((4, 24),)

MUTATION_RATES: Tuple[float, ...] = (0.0, 0.1, 0.3, 0.6)
MUTATION_RATES_QUICK: Tuple[float, ...] = (0.0, 0.6)


def _memo_enabled() -> bool:
    """Honour ``REPRO_RESOLUTION_MEMO=off`` like the speed suite does.

    The memo is a wall-clock cache, so the throughput table must be
    byte-identical either way — CI reruns this experiment with the memo
    (and charge plans) off and ``cmp``-asserts exactly that over the
    mutation-heavy fleet cells.
    """
    return os.environ.get("REPRO_RESOLUTION_MEMO", "on").lower() \
        not in ("off", "0", "false")


def _throughput(profile: str, tenants: int, total_requests: int,
                mutation_rate: float) -> float:
    kernel = make_kernel(profile, resolution_memo=_memo_enabled())
    return server_fleet.run_benchmark(
        kernel, tenants, total_requests=total_requests,
        mutation_rate=mutation_rate, drains=3, seed=11)


def run(quick: bool = False) -> Report:
    """Run the experiment; ``quick`` shrinks the sweep."""
    fleets = FLEETS_QUICK if quick else FLEETS
    rates = MUTATION_RATES_QUICK if quick else MUTATION_RATES
    report = Report(
        exp_id="tenant_crossover",
        title="eager vs. lazy coherence across a multi-tenant fleet",
        paper_expectation=("directory renames are the lazy scheme's "
                           "case for existing: eager pays per-dentry "
                           "subtree shootdowns at mutation time, lazy "
                           "an epoch bump plus pay-as-you-go "
                           "revalidation — so the winner flips from "
                           "eager to lazy as the tenant mix shifts "
                           "from read-dominated to mutation-heavy"),
        headers=["tenants", "mutation rate", "eager req/s", "lazy req/s",
                 "lazy/eager", "winner"],
    )
    winners: Dict[int, List[Tuple[float, str]]] = {}
    for tenants, total_requests in fleets:
        winners[tenants] = []
        for rate in rates:
            eager = _throughput("optimized", tenants, total_requests,
                                rate)
            lazy = _throughput("optimized-lazy", tenants, total_requests,
                               rate)
            winner = "lazy" if lazy > eager else "eager"
            winners[tenants].append((rate, winner))
            report.add_row(tenants, rate, round(eager, 1), round(lazy, 1),
                           f"{lazy / eager:.4f}", winner)
    most_mutating = rates[-1]
    report.check(
        "lazy coherence wins every mutation-heavy fleet "
        f"(mutation rate {most_mutating})",
        all(dict(winners[tenants])[most_mutating] == "lazy"
            for tenants, _ in fleets))
    report.check(
        "eager coherence holds the read-only fleets "
        "(no renames, revalidation pure overhead)",
        all(dict(winners[tenants])[0.0] == "eager"
            for tenants, _ in fleets))
    report.notes = ("throughput is virtual-time only: identical with "
                    "charge plans on or off (CI cmp-asserts the "
                    "REPRO_CHARGE_PLANS=0 rerun byte-for-byte) and "
                    "under any interleaving engine; the fleet engine "
                    "behind this table is documented in "
                    "docs/benchmarking.md#the-multi-tenant-fleet-engine")
    return report
