"""§4.3: network file systems — where the fastpath can and cannot help.

"Our prototype does not support direct lookup on network file systems,
such as NFS versions 2 and 3 ... the client must revalidate all path
components at the server — effectively forcing a cache miss and
nullifying any benefit to the hit path.  We expect these optimizations
could benefit a stateful protocol with callbacks on directory
modification, such as AFS or NFS 4.1."

We measure warm stat latency over three-component paths on an NFS-like
client (per-component revalidation RPCs) and an AFS-like client
(callback-based), under both kernels.
"""

from __future__ import annotations

from repro import O_CREAT, O_RDWR, make_kernel
from repro.bench.harness import Report, gain_pct
from repro.fs.netfs import (AfsLikeFs, ExportServer, NfsLikeFs,
                            attach_callback_invalidation)


def _measure(profile: str, fs_cls) -> float:
    kernel = make_kernel(profile)
    task = kernel.spawn_task(uid=0, gid=0)
    server = ExportServer(kernel.costs)
    fs = fs_cls(server)
    kernel.sys.mkdir(task, "/net")
    kernel.sys.mount_fs(task, fs, "/net")
    if fs_cls is AfsLikeFs:
        attach_callback_invalidation(kernel, fs)
    kernel.sys.mkdir(task, "/net/a")
    kernel.sys.mkdir(task, "/net/a/b")
    fd = kernel.sys.open(task, "/net/a/b/f", O_CREAT | O_RDWR)
    kernel.sys.close(task, fd)
    for _ in range(2):
        kernel.sys.stat(task, "/net/a/b/f")
    start = kernel.now_ns
    kernel.sys.stat(task, "/net/a/b/f")
    return kernel.now_ns - start


def run(quick: bool = False) -> Report:
    """Run the experiment; ``quick`` shrinks workload scale."""
    report = Report(
        exp_id="§4.3 netfs",
        title="Warm stat latency on network file systems (ns)",
        paper_expectation=("NFS-like: revalidation nullifies the hit "
                           "path on both kernels; AFS-like: callbacks "
                           "keep hits local and the fastpath helps"),
        headers=["client", "baseline ns", "optimized ns", "gain %"],
    )
    values = {}
    for fs_cls in (NfsLikeFs, AfsLikeFs):
        base = _measure("baseline", fs_cls)
        opt = _measure("optimized", fs_cls)
        values[fs_cls.fstype] = (base, opt)
        report.add_row(fs_cls.fstype, base, opt, gain_pct(base, opt))

    nfs_base, nfs_opt = values["nfs-like"]
    afs_base, afs_opt = values["afs-like"]
    report.check("NFS-like warm stats are RTT-bound on both kernels "
                 "(gain within ±2%)",
                 abs(gain_pct(nfs_base, nfs_opt)) < 2.0,
                 f"{gain_pct(nfs_base, nfs_opt):+.2f}%")
    report.check("AFS-like warm stats are orders of magnitude cheaper "
                 "than NFS-like", afs_base * 20 < nfs_base)
    report.check("the fastpath helps the stateful protocol "
                 "(paper's §4.3 expectation)",
                 gain_pct(afs_base, afs_opt) > 8.0,
                 f"{gain_pct(afs_base, afs_opt):.1f}%")
    return report
