"""Table 3: Apache auto-generated directory listing throughput.

Pages are generated per request (readdir + per-entry stat + HTML);
the paper reports 5.9-12.2% higher request throughput on the optimized
kernel across directory sizes 10-10,000.
"""

from __future__ import annotations

from repro import make_kernel
from repro.bench.harness import Report, speedup_pct
from repro.workloads import webserver

SIZES = [10, 100, 1000, 10000]
PAPER_GAINS = {10: 12.24, 100: 6.43, 1000: 5.92, 10000: 10.09}


def run(quick: bool = False) -> Report:
    """Run the experiment; ``quick`` shrinks workload scale."""
    sizes = SIZES[:-1] if quick else SIZES
    requests = 10 if quick else 30
    report = Report(
        exp_id="Table 3",
        title="Apache directory-listing throughput (requests/second)",
        paper_expectation="gains of 5.9-12.2% across directory sizes",
        headers=["files", "baseline req/s", "optimized req/s", "gain %",
                 "paper gain %"],
    )
    gains = {}
    for size in sizes:
        values = {}
        for profile in ("baseline", "optimized"):
            kernel = make_kernel(profile)
            values[profile] = webserver.run_benchmark(kernel, size,
                                                      requests=requests)
        gain = speedup_pct(values["baseline"], values["optimized"])
        gains[size] = gain
        report.add_row(size, values["baseline"], values["optimized"],
                       gain, PAPER_GAINS[size])
    report.check("optimized wins at every directory size",
                 all(g > 0 for g in gains.values()),
                 ", ".join(f"{s}:{g:+.1f}%" for s, g in gains.items()))
    report.check("gains in the paper's mid-single-digit-to-low-teens band "
                 "for 10-1000 files",
                 all(3.0 <= gains[s] <= 18.0
                     for s in sizes if s <= 1000))
    report.notes = ("at 10,000 files the per-request working set exceeds "
                    "the 4096-entry PCC, so our gain narrows; the paper's "
                    "+10.1% suggests a lighter population cost there — "
                    "see the PCC-capacity ablation.")
    return report
