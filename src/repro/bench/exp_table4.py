"""Table 4: lines of code changed (adoption-cost inventory).

The paper reports ~1,000 LoC of hooks in dcache.c/namei.c, ~2,400 LoC of
new files, small VFS/LSM touch-ups, and zero low-level file system
changes.  Reinterpreted for this codebase: we inventory the optimized
design (repro.core) against the substrate it hooks into (repro.vfs,
repro.fs), and verify the paper's structural claim — the low-level file
systems contain no optimized-kernel logic.
"""

from __future__ import annotations

import os
from typing import Dict

from repro.bench.harness import Report


def _loc(path: str) -> int:
    """Source lines (non-blank, non-comment-only), sloccount-style."""
    count = 0
    with open(path, "r", encoding="utf-8") as handle:
        in_doc = False
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith(('"""', "'''")):
                # Toggle docstring state (handles one-line docstrings).
                if not (in_doc is False and stripped.endswith(('"""', "'''"))
                        and len(stripped) > 3):
                    in_doc = not in_doc
                continue
            if in_doc or stripped.startswith("#"):
                continue
            count += 1
    return count


def _package_loc(root: str) -> Dict[str, int]:
    out = {}
    for dirpath, _dirs, files in os.walk(root):
        for name in sorted(files):
            if name.endswith(".py"):
                path = os.path.join(dirpath, name)
                out[os.path.relpath(path, root)] = _loc(path)
    return out


def run(quick: bool = False) -> Report:
    """Run the experiment (scale-independent: it inventories the repo)."""
    import repro
    src_root = os.path.dirname(os.path.abspath(repro.__file__))
    report = Report(
        exp_id="Table 4",
        title="Lines of code by subsystem (this reproduction)",
        paper_expectation=("optimizations concentrated in new files + "
                           "dcache/namei hooks; zero low-level FS "
                           "changes; minor LSM impact"),
        headers=["subsystem", "files", "LoC"],
    )
    packages = ["core", "vfs", "fs", "sim", "workloads", "bench",
                "testing"]
    totals = {}
    for package in packages:
        locs = _package_loc(os.path.join(src_root, package))
        totals[package] = sum(locs.values())
        report.add_row(f"repro.{package}", len(locs), totals[package])

    # Structural claim: the low-level file systems never import the
    # optimized-kernel package.
    fs_dir = os.path.join(src_root, "fs")
    fs_mentions_core = False
    for name in os.listdir(fs_dir):
        if name.endswith(".py"):
            with open(os.path.join(fs_dir, name), encoding="utf-8") as fh:
                if "repro.core" in fh.read():
                    fs_mentions_core = True
    report.check("low-level file systems contain no optimized-kernel "
                 "code (paper: FSes unchanged)", not fs_mentions_core)
    report.check("the optimized design is a bounded fraction of the "
                 "substrate (paper: ~2.4k new + ~1k hook LoC)",
                 totals["core"] < totals["vfs"] + totals["fs"],
                 f"core={totals['core']} vs substrate="
                 f"{totals['vfs'] + totals['fs']}")
    return report
