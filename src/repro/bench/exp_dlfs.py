"""§7: in-memory vs on-disk full-path hashing (the DLFS comparison).

"An important insight of our work is that full path hashing in memory,
but not on disk, can realize similar performance gains, but without these
usability problems, such as deep directory copies on a rename."

Three systems rename a populated directory:

* baseline dcache over simext — constant-time rename, linear lookups;
* optimized dcache over simext — fast lookups, rename linear in the
  *cached* subtree at ~tens of ns per dentry (memory work);
* baseline dcache over a DLFS-like path-keyed store — fast single-I/O
  lookups, but rename re-keys every descendant *on disk*.
"""

from __future__ import annotations

from repro import make_kernel
from repro.bench.harness import Report
from repro.fs.dlfs import DlfsLikeFs
from repro.workloads.tree import build_fanout_tree


def _measure(profile: str, depth: int, use_dlfs: bool):
    if use_dlfs:
        from repro.sim.costs import CostModel
        costs = CostModel()
        kernel = make_kernel(profile, root_fs=DlfsLikeFs(costs),
                             costs=costs)
    else:
        kernel = make_kernel(profile)
    task = kernel.spawn_task(uid=0, gid=0)
    base, descendants = build_fanout_tree(kernel, task, "/victim", depth)
    # Files live at the leaves: base/dir0/.../dir0/file0.
    probe = base + "/dir0" * (depth - 1) + "/file0"
    kernel.sys.stat(task, probe)
    start = kernel.now_ns
    kernel.sys.stat(task, probe)
    lookup_ns = kernel.now_ns - start
    start = kernel.now_ns
    kernel.sys.rename(task, base, "/renamed")
    rename_ns = kernel.now_ns - start
    return lookup_ns, rename_ns, descendants


def run(quick: bool = False) -> Report:
    """Run the experiment; ``quick`` shrinks workload scale."""
    depth = 2 if quick else 3
    report = Report(
        exp_id="§7 DLFS",
        title="Full-path hashing: in memory (DLHT) vs on disk (DLFS)",
        paper_expectation=("on-disk path hashing gives one-I/O lookups "
                           "but turns rename into a deep recursive copy; "
                           "the DLHT keeps rename's on-disk cost constant "
                           "and pays only in-memory invalidation"),
        headers=["system", "warm lookup (ns)", "rename (us)",
                 "descendants"],
    )
    systems = [
        ("baseline dcache / simext", "baseline", False),
        ("optimized dcache / simext", "optimized", False),
        ("baseline dcache / dlfs-like", "baseline", True),
    ]
    results = {}
    for label, profile, use_dlfs in systems:
        lookup_ns, rename_ns, descendants = _measure(profile, depth,
                                                     use_dlfs)
        results[label] = (lookup_ns, rename_ns, descendants)
        report.add_row(label, lookup_ns, rename_ns / 1000, descendants)

    ext_opt = results["optimized dcache / simext"]
    ext_base = results["baseline dcache / simext"]
    dlfs = results["baseline dcache / dlfs-like"]
    report.check("the optimized dcache wins warm lookups over baseline",
                 ext_opt[0] < ext_base[0])
    report.check("DLFS rename is far costlier than the DLHT's in-memory "
                 "invalidation (the §7 usability cliff)",
                 dlfs[1] > 10 * ext_opt[1],
                 f"dlfs {dlfs[1]/1000:.0f} us vs optimized "
                 f"{ext_opt[1]/1000:.0f} us")
    report.check("optimized rename overhead stays memory-scale "
                 "(< 100 ns per cached descendant over baseline)",
                 (ext_opt[1] - ext_base[1]) / max(1, ext_opt[2]) < 100)
    per_obj = dlfs[1] / max(1, dlfs[2])
    report.check("DLFS pays I/O-scale cost per descendant",
                 per_obj > 5_000, f"{per_obj:.0f} ns/object")
    return report
