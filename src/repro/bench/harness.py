"""Shared experiment-report plumbing for the benchmark suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence


@dataclass
class Check:
    """One qualitative claim from the paper, verified against our data.

    ``passed`` records whether the *shape* holds (who wins, roughly by
    what factor) — absolute values are not expected to match a different
    substrate.
    """

    claim: str
    passed: bool
    detail: str = ""


@dataclass
class Report:
    """Result of reproducing one table or figure."""

    exp_id: str
    title: str
    paper_expectation: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    checks: List[Check] = field(default_factory=list)
    notes: str = ""
    #: Harness attribution, filled in by the benchmark engine after the
    #: run: wall-clock seconds this experiment took on the host, and the
    #: worker process that ran it.  Not rendered by :meth:`to_markdown`
    #: (wall-clock varies run to run and the default report must stay
    #: byte-deterministic); the engine renders them via its ``--timing``
    #: appendix and the stderr timing table instead.
    wall_clock_s: float = 0.0
    worker: str = ""

    def add_row(self, *values: Any) -> None:
        self.rows.append(values)

    def check(self, claim: str, passed: bool, detail: str = "") -> None:
        self.checks.append(Check(claim, bool(passed), detail))

    @property
    def all_passed(self) -> bool:
        return all(check.passed for check in self.checks)

    # -- rendering -----------------------------------------------------------

    def to_text(self) -> str:
        lines = [f"== {self.exp_id}: {self.title}",
                 f"paper: {self.paper_expectation}"]
        lines.append(render_table(self.headers, self.rows))
        for check in self.checks:
            mark = "PASS" if check.passed else "FAIL"
            detail = f" ({check.detail})" if check.detail else ""
            lines.append(f"  [{mark}] {check.claim}{detail}")
        if self.notes:
            lines.append(f"  note: {self.notes}")
        if self.wall_clock_s:
            worker = f" on {self.worker}" if self.worker else ""
            lines.append(f"  harness: {self.wall_clock_s:.2f}s "
                         f"wall-clock{worker}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [f"### {self.exp_id}: {self.title}", "",
                 f"**Paper:** {self.paper_expectation}", ""]
        lines.append("| " + " | ".join(str(h) for h in self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_fmt(v) for v in row) + " |")
        lines.append("")
        for check in self.checks:
            mark = "✅" if check.passed else "❌"
            detail = f" — {check.detail}" if check.detail else ""
            lines.append(f"- {mark} {check.claim}{detail}")
        if self.notes:
            lines.append(f"\n*Note: {self.notes}*")
        lines.append("")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    return str(value)


def render_table(headers: Sequence[str], rows: List[Sequence[Any]]) -> str:
    """Fixed-width text table."""
    table = [[str(h) for h in headers]] + \
        [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[col]) for row in table)
              for col in range(len(headers))]
    out = []
    for i, row in enumerate(table):
        out.append("  ".join(cell.rjust(width)
                             for cell, width in zip(row, widths)))
        if i == 0:
            out.append("  ".join("-" * width for width in widths))
    return "\n".join(out)


def gain_pct(baseline: float, optimized: float) -> float:
    """Latency gain: positive when optimized is faster."""
    if baseline == 0:
        return 0.0
    return 100.0 * (1.0 - optimized / baseline)


def speedup_pct(baseline: float, optimized: float) -> float:
    """Throughput gain: positive when optimized is faster."""
    if baseline == 0:
        return 0.0
    return 100.0 * (optimized / baseline - 1.0)
