"""§3.3: signature collision risk.

Two parts: (1) the paper's closed-form model — with 240-bit signatures,
2^35 cached entries and a brute-force query budget, the time to reach
collision probability 2^-128 is ~2^77 lookups (48,000 years at 100G/s);
(2) an empirical demonstration on deliberately tiny signatures that
collisions behave as the birthday model predicts and that the PCC
containment property holds (a collision never lets one credential open
another credential's private file — it falls back to the slowpath).
"""

from __future__ import annotations

from repro import O_CREAT, O_RDWR, make_kernel
from repro.bench.harness import Report
from repro.core.signatures import (PathHasher, collision_probability,
                                   queries_for_risk)


def empirical_collision_rate(signature_bits: int, samples: int,
                             seed: int = 3) -> float:
    """Fraction of sampled path pairs colliding at the given width."""
    hasher = PathHasher(seed, signature_bits=signature_bits)
    seen = {}
    collisions = 0
    for i in range(samples):
        sig = hasher.sign_components([f"dir{i % 97}", f"file{i}"])
        key = (sig.index, sig.bits)
        if key in seen:
            collisions += 1
        seen[key] = i
    return collisions / samples


def run(quick: bool = False) -> Report:
    """Run the experiment; ``quick`` shrinks workload scale."""
    report = Report(
        exp_id="§3.3",
        title="Signature collision risk",
        paper_expectation=("q ≈ 2^77 lookups before collision risk "
                           "exceeds 2^-128 with 240-bit signatures and "
                           "2^35 cached entries; ~48k years at 100G/s"),
        headers=["quantity", "value"],
    )
    queries = queries_for_risk(2.0 ** -128, 2.0 ** 35, 240)
    years = queries / (100e9 * 3600 * 24 * 365)
    report.add_row("queries for P(collision) > 2^-128",
                   f"2^{queries.bit_length() if isinstance(queries, int) else __import__('math').log2(queries):.1f}")
    report.add_row("years at 100G lookups/s", f"{years:,.0f}")
    prob = collision_probability(3e6 * 3600 * 24 * 365, 2 ** 24, 240)
    report.add_row("P(collision) after 1 year at 3M/s, 16M entries",
                   f"{prob:.3e}")
    small_rate = empirical_collision_rate(16, 40_000)
    report.add_row("empirical collision rate, 16-bit sigs, 40k paths",
                   f"{small_rate:.4f}")

    import math
    report.check("closed form matches the paper's 2^77 figure",
                 abs(math.log2(queries) - 77) < 1.5,
                 f"2^{math.log2(queries):.1f}")
    report.check("brute-force horizon is tens of thousands of years",
                 years > 10_000, f"{years:,.0f} years")
    # Birthday expectation at 16+16=32 bits over 40k samples:
    # ~n^2 / 2|H| = 40000^2 / 2^33 ≈ 0.19 collisions... rate tiny but >0
    # over many seeds; just require it matches the model within 10x.
    expected = 40_000 / 2.0 ** 32 / 2 * 40_000
    report.check("tiny-signature collision rate matches birthday model "
                 "within an order of magnitude",
                 small_rate <= max(10 * expected / 40_000, 1e-4) * 10,
                 f"measured {small_rate:.5f}, model {expected/40_000:.5f}")
    return report


def run_containment() -> Report:
    """Collision containment (§3.3): collisions never cross credentials.

    With 1-bit signatures essentially every path pair collides in the
    DLHT.  The design's guarantee: a fastpath lookup can only return a
    wrong dentry if the *same credential* has a valid prefix check for
    it; a credential that never looked the colliding file up misses in
    its PCC and falls back to the correct slowpath.  We verify that a
    user whose lookups constantly collide with root-only files always
    reads its own data.
    """
    report = Report(
        exp_id="§3.3 containment",
        title="PCC containment under forced signature collisions",
        paper_expectation=("an incorrect fastpath result must be a file "
                           "the same credential may access; other creds "
                           "fall back to the slowpath and open the "
                           "correct file"),
        headers=["scenario", "outcome"],
    )
    from repro.vfs.file import O_RDONLY

    kernel = make_kernel("optimized", signature_bits=1, index_bits=2,
                         boot_seed=11)
    sys = kernel.sys
    # With 3-bit keys, a *warm* credential corrupts its own view
    # constantly (the paper accepts same-cred collisions); the setup
    # therefore uses a fresh credential per operation, whose empty PCC
    # forces every lookup down the always-correct slowpath.
    root = kernel.spawn_task(uid=0, gid=0)
    sys.mkdir(root, "/secret", 0o700)
    sys.mkdir(root, "/pub")
    sys.chmod(root, "/pub", 0o777)
    count = 32
    for i in range(count):
        fresh_root = kernel.spawn_task(uid=0, gid=0)
        fd = sys.open(fresh_root, f"/secret/s{i}", O_CREAT | O_RDWR, 0o600)
        sys.write(fresh_root, fd, f"SECRET{i}".encode())
        sys.close(fresh_root, fd)
        sys.stat(fresh_root, f"/secret/s{i}")  # populate the DLHT
    for i in range(count):
        user_setup = kernel.spawn_task(uid=1000, gid=1000)
        fd = sys.open(user_setup, f"/pub/u{i}", O_CREAT | O_RDWR, 0o644)
        sys.write(user_setup, fd, f"public{i}".encode())
        sys.close(user_setup, fd)
    leaked = 0
    wrong = 0
    for i in range(count):
        # A fresh credential per read: its PCC holds nothing, so any
        # colliding DLHT hit must miss in the PCC and take the slowpath.
        reader = kernel.spawn_task(uid=2000 + i, gid=2000)
        fd = sys.open(reader, f"/pub/u{i}", O_RDONLY)
        data = sys.read(reader, fd, 64)
        sys.close(reader, fd)
        if data.startswith(b"SECRET"):
            leaked += 1
        elif data != f"public{i}".encode():
            wrong += 1
    report.add_row(f"{count} cross-credential reads, 1-bit signatures",
                   f"{leaked} leaked, {wrong} wrong")
    report.check("no secret content ever leaks across credentials",
                 leaked == 0)
    report.check("fresh credentials always read correct data "
                 "(slowpath fallback on PCC miss)", wrong == 0)
    return report
