"""Figure 1: fraction of execution time in path-based system calls.

The paper measures, with ftrace and a warm cache, how much of each
utility's runtime goes to path-based syscalls (access/stat, open,
chmod/chown, unlink): 6–54% across the roster, motivating lookup latency
as the optimization target.  We attribute virtual time per syscall with
the MeteredSyscalls wrapper over the baseline kernel.
"""

from __future__ import annotations

from repro import make_kernel
from repro.bench.harness import Report
from repro.workloads import apps


def run(quick: bool = False) -> Report:
    """Run the experiment; ``quick`` shrinks workload scale."""
    report = Report(
        exp_id="Figure 1",
        title="Fraction of execution time in path-based syscalls",
        paper_expectation=("path-based syscalls account for 6-54% of "
                           "total execution time; dominated by stat/open "
                           "for all utilities except rm"),
        headers=["app", "total (ms)", "path syscalls (ms)", "fraction %",
                 "stat/open share %", "lookup calls % (§1)"],
    )
    fractions = {}
    for factory in apps.ALL_APPS:
        app = factory()
        if quick:
            app.tree_scale = "small"
        kernel = make_kernel("baseline")
        result = apps.run_app(kernel, app, warm=True)
        stat_open = sum(result.syscall_counts.get(op, 0)
                        for op in ("stat", "lstat", "fstatat", "open",
                                   "openat"))
        path_calls = sum(result.syscall_counts.get(op, 0)
                         for op in apps.PATH_SYSCALLS)
        total_calls = sum(result.syscall_counts.values())
        share = 100.0 * stat_open / path_calls if path_calls else 0.0
        # §1's iBench statistic: the fraction of all syscalls that do a
        # path lookup (10-20% for desktop apps; higher for FS utilities).
        count_fraction = (100.0 * path_calls / total_calls
                          if total_calls else 0.0)
        fractions[app.name] = result.path_fraction
        report.add_row(app.name, result.total_ns / 1e6,
                       result.path_syscall_ns / 1e6,
                       100.0 * result.path_fraction, share,
                       count_fraction)
    spread = [f for f in fractions.values()]
    report.check("every app spends a measurable share in path syscalls",
                 min(spread) > 0.005,
                 f"min={100*min(spread):.1f}%")
    report.check("path-heavy utilities exceed 30% (find/du/git diff)",
                 max(fractions["find"], fractions["du -s"],
                     fractions["git diff"]) > 0.30)
    report.check("compute-bound utilities sit in single digits (make)",
                 fractions["make"] < 0.10,
                 f"make={100*fractions['make']:.1f}%")
    return report
