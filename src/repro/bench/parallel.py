"""Process-parallel benchmark scheduler.

The experiment suite (``repro.bench.report``) and the wall-clock speed
suite (``repro.bench.speed``) are both embarrassingly parallel: every
task builds its own kernels from scratch and shares nothing with its
siblings.  This module fans a task list out across a
:mod:`multiprocessing` worker pool and merges the results back in
submission order, so the rendered output of a parallel run is
byte-identical to a serial one — parallelism changes wall-clock time and
nothing else.

Determinism contract:

* **Order-preserving merge.**  Workers complete in any order; results
  are slotted back by task index before anything is rendered.
* **Deterministic per-task seeding.**  Before each task runs — in a
  worker *or* inline — the global :mod:`random` state is seeded from a
  stable CRC of the task name (:func:`task_seed`).  Library code uses
  its own seeded ``random.Random`` instances everywhere today; the
  engine-level seed guarantees any future global-RNG consumer behaves
  identically under ``--jobs 1`` and ``--jobs N``.
* **Picklable work units.**  A task is ``(name, fn, args)`` where ``fn``
  is a module-level function — workers import it by qualified name, so
  registries of closures/lambdas stay in the parent and only the task
  name crosses the process boundary.

Each result carries wall-clock duration and worker attribution so the
harness's own time is observable (rendered by ``--timing`` /
``print_timing_table``).
"""

from __future__ import annotations

import os
import random
import sys
import time
import zlib
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

#: A unit of work: (display name, module-level callable, positional args).
TaskSpec = Tuple[str, Callable[..., Any], Tuple[Any, ...]]


@dataclass
class TaskResult:
    """Outcome of one task, with harness-time attribution."""

    index: int
    name: str
    value: Any
    wall_clock_s: float
    worker: str


def task_seed(name: str) -> int:
    """Stable per-task seed: CRC32 of the task name (hash() is salted)."""
    return zlib.crc32(name.encode("utf-8"))


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/0 means one per CPU."""
    if not jobs:
        return os.cpu_count() or 1
    return max(1, jobs)


def _execute(task: TaskSpec, index: int) -> TaskResult:
    """Run one task (in whichever process) with seeding and timing."""
    name, fn, args = task
    random.seed(task_seed(name))
    start = time.perf_counter()
    value = fn(*args)
    elapsed = time.perf_counter() - start
    try:
        import multiprocessing
        worker = multiprocessing.current_process().name
    except Exception:  # pragma: no cover - multiprocessing always importable
        worker = "unknown"
    if worker == "MainProcess":
        worker = "main"
    return TaskResult(index, name, value, elapsed, worker)


def _pool_entry(payload: Tuple[int, TaskSpec]) -> TaskResult:
    index, task = payload
    return _execute(task, index)


def run_tasks(tasks: Sequence[TaskSpec], jobs: Optional[int] = None,
              progress: bool = True) -> List[TaskResult]:
    """Run every task, ``jobs`` at a time, preserving input order.

    ``jobs`` <= 1 (after :func:`resolve_jobs`) runs everything inline in
    this process — the exact same code path minus the pool, which is
    what makes serial and parallel outputs comparable byte-for-byte.
    """
    jobs = resolve_jobs(jobs)
    total = len(tasks)
    results: List[Optional[TaskResult]] = [None] * total
    done = 0

    def note(result: TaskResult) -> None:
        if progress:
            print(f"  [{done}/{total}] {result.name} "
                  f"({result.wall_clock_s:.2f}s on {result.worker})",
                  file=sys.stderr, flush=True)

    if jobs <= 1 or total <= 1:
        for index, task in enumerate(tasks):
            result = _execute(task, index)
            results[index] = result
            done += 1
            note(result)
    else:
        import multiprocessing
        payloads = list(enumerate(tasks))
        with multiprocessing.Pool(processes=min(jobs, total)) as pool:
            for result in pool.imap_unordered(_pool_entry, payloads,
                                              chunksize=1):
                results[result.index] = result
                done += 1
                note(result)
    missing = [i for i, r in enumerate(results) if r is None]
    if missing:  # pragma: no cover - a worker crash surfaces as an exception
        raise RuntimeError(f"tasks never completed: {missing}")
    return results  # type: ignore[return-value]


def print_timing_table(results: Sequence[TaskResult],
                       stream=None) -> None:
    """Per-task wall-clock / worker attribution summary (stderr)."""
    stream = stream or sys.stderr
    total = sum(r.wall_clock_s for r in results)
    print("harness timing (wall-clock):", file=stream)
    for r in sorted(results, key=lambda r: -r.wall_clock_s):
        share = 100.0 * r.wall_clock_s / total if total else 0.0
        print(f"  {r.name:24s} {r.wall_clock_s:8.2f}s  {share:5.1f}%  "
              f"{r.worker}", file=stream)
    print(f"  {'total (cpu-seconds)':24s} {total:8.2f}s", file=stream)


def timing_appendix(results: Sequence[TaskResult]) -> str:
    """Markdown appendix rendering harness time per experiment.

    Only emitted under ``--timing``: wall-clock varies run to run, and
    the default output must stay byte-identical between serial and
    parallel runs (the property CI asserts).
    """
    lines = ["## Appendix: harness timing", "",
             "Wall-clock seconds of *harness* time per experiment "
             "(simulated results above are virtual-time and unaffected).",
             "",
             "| experiment | wall-clock (s) | worker |",
             "|---|---|---|"]
    for r in results:
        lines.append(f"| {r.name} | {r.wall_clock_s:.2f} | {r.worker} |")
    lines.append("")
    return "\n".join(lines)
