"""Simulator speed benchmarks: wall-clock cost of simulated syscalls.

Unlike every ``exp_*`` module (which measures *virtual* time inside the
simulation), this module measures how fast the simulator itself runs on
the host — the metric the hot-path optimizations (component-interned
signature hashing, path-parse memoization, the ``charge_in`` cost fast
path) are meant to improve.  Virtual-time results are bit-identical
before and after those optimizations (see ``tests/test_golden_counters``);
only these wall-clock numbers move.

Each benchmark builds and warms its kernel **once** per (benchmark,
profile) cell, captures a :class:`~repro.sim.snapshot.KernelSnapshot`,
and restores it before every repetition — so repetitions start from an
identical warm state without paying tree rebuilding, and the timed loop
measures only the hot path.  The (benchmark × profile) matrix fans out
across a process pool (``--jobs``) with order-preserving result merging,
so the emitted JSON key order and — in ``--virtual`` mode — the values
are identical to a serial run.

Modes:

``repro-speed [--output BENCH_simspeed.json] [--jobs N] [--memo on|off]``
    Run the benchmark loops (warm stat, stat/rename churn,
    create/unlink, readdir, rename-invalidation, rename-churn,
    compiled trace replay, interleaved multi-task replay, a
    multi-tenant server-fleet drain, and warm snapshot restore on all
    three kernel profiles) and write median
    microseconds-per-operation to a JSON file.  The committed
    ``BENCH_simspeed.json`` at the repo root
    is generated this way.  ``--only name,name`` restricts the run
    (unknown names exit 2); ``--timing`` appends markdown tables
    reporting trace **compile** time, resolution-memo hit/flush
    counters, and charge-plan capture/apply counters separately from
    the executed op/s numbers (the
    ``trace_replay`` cell times execution only).  ``--memo off``
    disables the resolution memo (:mod:`repro.core.resmemo`) in every
    benchmark kernel, and ``--plans off`` disables charge plans
    (:class:`repro.sim.costs.ChargePlanRegistry`) in every replay cell
    — virtual results are bit-identical either way;
    only wall-clock moves.  ``--cprofile`` reruns each cell once under
    :mod:`cProfile` after timing it and dumps the top-20 functions by
    cumulative time to stderr, without perturbing the timed medians.

``repro-speed --virtual [--jobs N]``
    Record *virtual* nanoseconds per op instead of wall-clock
    microseconds.  Virtual time is deterministic, so two runs — serial,
    parallel, different hosts — produce byte-identical JSON; CI uses
    this to prove the parallel engine does not change results.

``repro-speed --check pytest-benchmark.json [--baseline ...]``
    Compare a pytest-benchmark JSON export (from
    ``pytest benchmarks/test_simulator_speed.py --benchmark-json=...``)
    against the committed baseline and exit non-zero if any benchmark's
    median regressed by more than ``--threshold`` (default 25%), or if
    any baseline key has no mapped pytest result (a silently skipped
    gate is a broken gate).
"""

from __future__ import annotations

import argparse
import cProfile
import gc
import json
import os
import pstats
import statistics
import sys
import time
from typing import Callable, Dict, List, Tuple

from repro import O_CREAT, O_RDWR, make_kernel
from repro.bench import parallel
from repro.sim.snapshot import KernelSnapshot
from repro.workloads import lmbench, server_fleet
from repro.workloads.compile import build_loop_trace, compile_trace
from repro.workloads.traces import replay_compiled, replay_interleaved
from repro.workloads.tree import build_flat_dir

#: Kernel profiles every benchmark runs against.
PROFILES = ("baseline", "optimized", "optimized-lazy")


def _memo_enabled() -> bool:
    """Resolution-memo switch for benchmark kernels.

    Read from the environment (not CLI plumbing) so the setting reaches
    ``--jobs`` worker processes unchanged; ``--memo off`` sets it.
    """
    return os.environ.get("REPRO_RESOLUTION_MEMO", "on").lower() \
        not in ("off", "0", "false")


def _make(profile: str, quantize: bool = False):
    """Benchmark kernel honouring the ``--memo`` switch.

    The replay-loop cells pass ``quantize=True`` to enable
    :attr:`~repro.core.kernel.DcacheConfig.lazy_sweep_quantize`: lazy
    sweep charges are batched at replay-pass boundaries instead of
    firing mid-pass, which keeps the ``optimized-lazy`` replay cells on
    the charge-plan fast path (see ``docs/coherence.md``).  A no-op on
    the non-lazy profiles.  Quantized virtual totals differ from
    non-quantized ones by design, so the switch is per-cell and baked
    into the committed baseline, never toggled between runs.
    """
    kwargs = {"resolution_memo": _memo_enabled()}
    if quantize:
        kwargs["lazy_sweep_quantize"] = True
    return make_kernel(profile, **kwargs)


def _plans_enabled() -> bool:
    """Charge-plan switch for the replay cells (``--plans off`` sets it).

    Env-carried like ``--memo`` so ``--jobs`` workers inherit it; the
    replay entry points re-read it per call, so no kernel plumbing is
    needed.
    """
    return os.environ.get("REPRO_CHARGE_PLANS", "on").strip().lower() \
        not in ("0", "off", "false", "no")


def _cprofile_enabled() -> bool:
    """Per-cell cProfile switch (``--cprofile``); env-carried for --jobs."""
    return os.environ.get("REPRO_CPROFILE", "").lower() \
        in ("1", "on", "true", "yes")

#: pytest-benchmark test name -> result key in BENCH_simspeed.json.
#: Used by ``--check`` to line CI benchmark runs up with the committed
#: baseline numbers.  Every key in the baseline file must be covered
#: here (and produced by the export) or --check fails loudly.
PYTEST_NAME_MAP = {
    "test_warm_stat_wallclock[baseline]": "warm_stat[baseline]",
    "test_warm_stat_wallclock[optimized]": "warm_stat[optimized]",
    "test_warm_stat_wallclock[optimized-lazy]": "warm_stat[optimized-lazy]",
    "test_create_unlink_wallclock[baseline]": "create_unlink[baseline]",
    "test_create_unlink_wallclock[optimized]": "create_unlink[optimized]",
    "test_create_unlink_wallclock[optimized-lazy]":
        "create_unlink[optimized-lazy]",
    "test_readdir_wallclock[baseline]": "readdir[baseline]",
    "test_readdir_wallclock[optimized]": "readdir[optimized]",
    "test_readdir_wallclock[optimized-lazy]": "readdir[optimized-lazy]",
    "test_rename_invalidation_wallclock[baseline]": "rename_inval[baseline]",
    "test_rename_invalidation_wallclock[optimized]":
        "rename_inval[optimized]",
    "test_rename_invalidation_wallclock[optimized-lazy]":
        "rename_inval[optimized-lazy]",
    "test_rename_churn_wallclock[baseline]": "rename_churn[baseline]",
    "test_rename_churn_wallclock[optimized]": "rename_churn[optimized]",
    "test_rename_churn_wallclock[optimized-lazy]":
        "rename_churn[optimized-lazy]",
    "test_trace_replay_wallclock[baseline]": "trace_replay[baseline]",
    "test_trace_replay_wallclock[optimized]": "trace_replay[optimized]",
    "test_trace_replay_wallclock[optimized-lazy]":
        "trace_replay[optimized-lazy]",
    "test_multi_task_replay_wallclock[baseline]":
        "multi_task_replay[baseline]",
    "test_multi_task_replay_wallclock[optimized]":
        "multi_task_replay[optimized]",
    "test_multi_task_replay_wallclock[optimized-lazy]":
        "multi_task_replay[optimized-lazy]",
    "test_server_fleet_wallclock[baseline]": "server_fleet[baseline]",
    "test_server_fleet_wallclock[optimized]": "server_fleet[optimized]",
    "test_server_fleet_wallclock[optimized-lazy]":
        "server_fleet[optimized-lazy]",
    "test_stat_churn_wallclock[baseline]": "stat_churn[baseline]",
    "test_stat_churn_wallclock[optimized]": "stat_churn[optimized]",
    "test_stat_churn_wallclock[optimized-lazy]": "stat_churn[optimized-lazy]",
    "test_snapshot_restore_wallclock[baseline]": "snapshot_restore[baseline]",
    "test_snapshot_restore_wallclock[optimized]":
        "snapshot_restore[optimized]",
    "test_snapshot_restore_wallclock[optimized-lazy]":
        "snapshot_restore[optimized-lazy]",
}

#: Cells the committed baseline must always carry.  The ``--check``
#: coverage rule only gates keys *present* in the baseline file, so a
#: baseline regenerated without the mutation-path cells would silently
#: stop gating the write path — their absence is itself a gate failure.
REQUIRED_BASELINE_KEYS = tuple(
    f"{name}[{profile}]"
    for name in ("rename_churn", "create_unlink")
    for profile in PROFILES)


# -- benchmark setup ------------------------------------------------------
#
# Each setup builds and warms a kernel and returns (kernel, task, bind),
# where ``bind(kernel, task)`` constructs the per-repetition op closure.
# The engine snapshots (kernel, task) once and re-binds against each
# restored copy, so per-op state (counters, flip flags) resets per rep
# exactly as a fresh setup would.

SetupResult = Tuple[object, object, Callable]


def _setup_warm_stat(profile: str) -> SetupResult:
    kernel = _make(profile)
    task = lmbench.prepare_lookup_tree(kernel)
    kernel.sys.stat(task, lmbench.LONG_PATH)  # steady state is the target

    def bind(kernel, task) -> Callable[[], None]:
        # Rep loops dispatch through a batch prologue: per-op entries
        # are prebound to the task once per rep, not per call.
        stat = kernel.sys.batch(task).stat
        path = lmbench.LONG_PATH

        def op() -> None:
            stat(path)

        return op

    return kernel, task, bind


def _setup_create_unlink(profile: str) -> SetupResult:
    kernel = _make(profile)
    task = kernel.spawn_task(uid=0, gid=0)
    kernel.sys.mkdir(task, "/w")

    def bind(kernel, task) -> Callable[[], None]:
        batch = kernel.sys.batch(task)
        sys_open, sys_close, sys_unlink = batch.open, batch.close, \
            batch.unlink
        counter = [0]

        def op() -> None:
            path = f"/w/f{counter[0]}"
            counter[0] += 1
            fd = sys_open(path, O_CREAT | O_RDWR)
            sys_close(fd)
            sys_unlink(path)

        return op

    return kernel, task, bind


def _setup_readdir(profile: str) -> SetupResult:
    kernel = _make(profile)
    task = kernel.spawn_task(uid=0, gid=0)
    build_flat_dir(kernel, task, "/big", 500)
    kernel.sys.listdir(task, "/big")

    def bind(kernel, task) -> Callable[[], None]:
        listdir = kernel.sys.batch(task).listdir

        def op() -> None:
            listdir("/big")

        return op

    return kernel, task, bind


def _setup_rename_inval(profile: str) -> SetupResult:
    """Rename a warm directory back and forth, re-statting under it.

    Each op pays the mutation-side invalidation cost (seq bumps, DLHT
    eviction on the optimized kernel) and then repopulates the caches
    with a stat — the simulator-speed view of the paper's deliberate
    lookup/mutation trade-off.
    """
    kernel = _make(profile)
    task = kernel.spawn_task(uid=0, gid=0)
    kernel.sys.mkdir(task, "/r")
    kernel.sys.mkdir(task, "/r/d0")
    kernel.sys.mkdir(task, "/r/d0/sub")
    fd = kernel.sys.open(task, "/r/d0/sub/f", O_CREAT | O_RDWR)
    kernel.sys.close(task, fd)
    kernel.sys.stat(task, "/r/d0/sub/f")

    def bind(kernel, task) -> Callable[[], None]:
        batch = kernel.sys.batch(task)
        rename, stat = batch.rename, batch.stat
        flip = [0]

        def op() -> None:
            src, dst = ("/r/d0", "/r/d1") if flip[0] == 0 \
                else ("/r/d1", "/r/d0")
            flip[0] ^= 1
            rename(src, dst)
            stat(dst + "/sub/f")

        return op

    return kernel, task, bind


def _setup_rename_churn(profile: str) -> SetupResult:
    """Mutation-heavy churn over a warm ~50-file cached subtree.

    Each op renames a directory holding 50 warm files and re-stats a
    handful of them.  Eager coherence pays a full subtree shootdown per
    rename; lazy coherence pays one epoch stamp plus touch-time
    revalidation of only the files actually re-statted — the workload
    the ``optimized-lazy`` profile exists for.
    """
    kernel = _make(profile)
    task = kernel.spawn_task(uid=0, gid=0)
    kernel.sys.mkdir(task, "/c")
    kernel.sys.mkdir(task, "/c/d0")
    for i in range(50):
        fd = kernel.sys.open(task, f"/c/d0/f{i}", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        kernel.sys.stat(task, f"/c/d0/f{i}")

    def bind(kernel, task) -> Callable[[], None]:
        batch = kernel.sys.batch(task)
        rename, stat = batch.rename, batch.stat
        flip = [0]

        def op() -> None:
            src, dst = ("/c/d0", "/c/d1") if flip[0] == 0 \
                else ("/c/d1", "/c/d0")
            flip[0] ^= 1
            rename(src, dst)
            for i in range(0, 50, 10):
                stat(f"{dst}/f{i}")

        return op

    return kernel, task, bind


def _setup_trace_replay(profile: str) -> SetupResult:
    """Compiled replay of the self-undoing fd-heavy loop trace.

    Compilation happens here, in setup — the timed op is **execution
    only** (one full ``replay_compiled`` pass over ~2.2k events through
    the batched dispatch table).  Compile cost is reported separately by
    ``--timing`` so it cannot hide in these op/s numbers.  The trace
    ends in the filesystem state it started from with every fd closed,
    so back-to-back replays on one kernel are deterministic.

    Runs with quantized lazy sweeping (see :func:`_make`) so the
    ``optimized-lazy`` cell replays through whole-pass charge plans
    instead of interpreting every pass — mid-pass sweep ticks are what
    used to keep it off the fast path.
    """
    kernel = _make(profile, quantize=True)
    task = kernel.spawn_task(uid=0, gid=0)
    trace = build_loop_trace(profile=profile)
    program = compile_trace(trace)
    replay_compiled(kernel, task, program)  # warm caches + fd numbering

    def bind(kernel, task) -> Callable[[], None]:
        def op() -> None:
            replay_compiled(kernel, task, program)

        return op

    return kernel, task, bind


def _setup_multi_task_replay(profile: str) -> SetupResult:
    """Interleaved compiled replay of 120 per-task streams on one kernel.

    The multi-tenant slice of the traffic engine (ROADMAP item 1): each
    task owns a small self-undoing loop trace under its own subtree,
    with its own credentials, cwd, and fd table, and a seeded
    round-robin scheduler interleaves the compiled streams unit by
    unit.  Scheduling is deterministic (fixed seed), so virtual results
    are byte-identical across runs and ``--jobs`` values.  The timed op
    is one full drain of all 120 streams; compilation happens here in
    setup, like ``trace_replay``.  Quantized lazy sweeping (see
    :func:`_make`) keeps the drain eligible for whole-drain charge
    plans on every profile.
    """
    kernel = _make(profile, quantize=True)
    tasks = []
    programs = []
    for i in range(120):
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, f"/home{i}")
        kernel.sys.chdir(task, f"/home{i}")
        tasks.append(task)
        trace = build_loop_trace(files=2, io_rounds=1, subdirs=1,
                                 profile=profile, root=f"/mt{i}")
        programs.append(compile_trace(trace))
    replay_interleaved(kernel, list(zip(tasks, programs)), seed=0)

    def bind(kernel, tasks) -> Callable[[], None]:
        streams = list(zip(tasks, programs))

        def op() -> None:
            replay_interleaved(kernel, streams, seed=0)

        return op

    return kernel, tasks, bind


def _setup_server_fleet(profile: str) -> SetupResult:
    """Interleaved drain of a multi-tenant webserver/maildir fleet.

    The heavyweight sibling of ``multi_task_replay``: six tenants with
    real content (docroots, mailboxes), Zipf-skewed request volume, and
    a 10% mutating request mix (docroot rotations, maildir flag flips,
    mailbox renames) recorded per tenant and drained through
    :func:`~repro.workloads.traces.replay_interleaved` — the engine
    behind ``exp_tenant_crossover``.  Provisioning, recording, and
    trace compilation all happen here in setup; the timed op is one
    full fleet drain.  Quantized lazy sweeping (see :func:`_make`)
    keeps the drain plan-eligible on ``optimized-lazy``.
    """
    kernel = _make(profile, quantize=True)
    fleet = server_fleet.build_fleet(kernel, 6, total_requests=48,
                                     mutation_rate=0.1, seed=3)
    server_fleet.drain_fleet(kernel, fleet)  # warm

    # The whole FleetSetup is the snapshot extra: it pins the admin and
    # tenant tasks, whose credential PCCs the lazy sweeper examines —
    # letting any of them die would tie virtual charges to GC timing.
    def bind(kernel, fleet) -> Callable[[], None]:
        def op() -> None:
            server_fleet.drain_fleet(kernel, fleet)

        return op

    return kernel, fleet, bind


def _setup_stat_churn(profile: str) -> SetupResult:
    """Interleaved stat/rename over overlapping hot paths.

    Each op stats eight warm files, flips a sibling directory with a
    rename — invalidating every memoized resolution (counter bump on
    the optimized profiles, ``d_move`` on all three) — then re-stats
    half the files.  This measures the resolution memo's *invalidation*
    cost (bulk flush + re-record + re-confirm), not just its steady-
    state hit rate: a memo that made mutations expensive would show up
    here, not in ``warm_stat``.
    """
    kernel = _make(profile)
    task = kernel.spawn_task(uid=0, gid=0)
    kernel.sys.mkdir(task, "/s")
    kernel.sys.mkdir(task, "/s/hot")
    for i in range(8):
        fd = kernel.sys.open(task, f"/s/hot/f{i}", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        kernel.sys.stat(task, f"/s/hot/f{i}")
    kernel.sys.mkdir(task, "/s/flip0")

    def bind(kernel, task) -> Callable[[], None]:
        batch = kernel.sys.batch(task)
        stat, rename = batch.stat, batch.rename
        paths = [f"/s/hot/f{i}" for i in range(8)]
        flip = [0]

        def op() -> None:
            for path in paths:
                stat(path)
            src, dst = ("/s/flip0", "/s/flip1") if flip[0] == 0 \
                else ("/s/flip1", "/s/flip0")
            flip[0] ^= 1
            rename(src, dst)
            for path in paths[::2]:
                stat(path)

        return op

    return kernel, task, bind


def _setup_snapshot_restore(profile: str) -> SetupResult:
    """Snapshot restore of a warm lookup-tree kernel.

    The op is ``KernelSnapshot.restore()`` itself — the same primitive
    every other cell performs once per repetition *outside* its timed
    loop, and the process-parallel experiment engine performs per
    worker.  With the struct-of-arrays dcache core, most per-dentry
    state rides in :class:`~repro.core.arena.DentryArena` columns that
    restore as one C-level array copy each, so this cell is where that
    bulk-copy win is measured (and gated) directly.
    """
    kernel = _make(profile)
    task = lmbench.prepare_lookup_tree(kernel)
    kernel.sys.stat(task, lmbench.LONG_PATH)  # warm the caches first

    def bind(kernel, task) -> Callable[[], None]:
        snap = KernelSnapshot(kernel, task)

        def op() -> None:
            snap.restore()

        return op

    return kernel, task, bind


BENCHMARKS: List[Tuple[str, Callable[[str], SetupResult], int]] = [
    ("warm_stat", _setup_warm_stat, 10_000),
    ("stat_churn", _setup_stat_churn, 1_000),
    ("create_unlink", _setup_create_unlink, 1_000),
    ("readdir", _setup_readdir, 100),
    ("rename_inval", _setup_rename_inval, 1_000),
    ("rename_churn", _setup_rename_churn, 500),
    ("trace_replay", _setup_trace_replay, 25),
    ("multi_task_replay", _setup_multi_task_replay, 20),
    ("server_fleet", _setup_server_fleet, 20),
    ("snapshot_restore", _setup_snapshot_restore, 200),
]

_BENCH_BY_NAME = {name: (setup, n) for name, setup, n in BENCHMARKS}


# -- timing ---------------------------------------------------------------

def _measure(setup: Callable[[str], SetupResult], profile: str,
             n: int, reps: int) -> float:
    """Median microseconds per op over ``reps`` warm-restored repetitions.

    The kernel is built and warmed once; each repetition restores the
    warm snapshot (identical state, no rebuild) and times only the op
    loop.

    Cyclic-GC pauses are kept out of the timed loops (``timeit``-style:
    collect once after setup, then disable the collector until the reps
    finish).  Without this, a cell's numbers depend on how much garbage
    *earlier* cells left in the process — gen-2 collections triggered
    mid-loop were inflating late-matrix cells by 2–3× in full-suite
    runs.  Reference counting still frees acyclic garbage immediately,
    and the collector is re-enabled (and runs at the next threshold)
    the moment the cell ends; virtual output is untouched either way.
    """
    kernel, task, bind = setup(profile)
    snap = KernelSnapshot(kernel, task)
    samples = []
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(reps):
            rep_kernel, rep_task = snap.restore()
            op = bind(rep_kernel, rep_task)
            t0 = time.perf_counter()
            for _ in range(n):
                op()
            samples.append((time.perf_counter() - t0) / n * 1e6)
    finally:
        if was_enabled:
            gc.enable()
    return statistics.median(samples)


def _measure_virtual(setup: Callable[[str], SetupResult], profile: str,
                     n: int) -> float:
    """Virtual nanoseconds per op — deterministic, host-independent."""
    kernel, task, bind = setup(profile)
    rep_kernel, rep_task = KernelSnapshot(kernel, task).restore()
    op = bind(rep_kernel, rep_task)
    start = rep_kernel.costs.now_ns
    for _ in range(n):
        op()
    return (rep_kernel.costs.now_ns - start) / n


def _profile_cell(bench_name: str, profile: str,
                  setup: Callable[[str], SetupResult], n: int) -> None:
    """Dump a cProfile top-20 for one cell's op loop to stderr.

    Profiling runs on a *separate* warm-restored kernel after the timed
    measurement, so interpreter tracing overhead never contaminates the
    reported medians — the profile explains the numbers, it is not part
    of them.
    """
    kernel, task, bind = setup(profile)
    rep_kernel, rep_task = KernelSnapshot(kernel, task).restore()
    op = bind(rep_kernel, rep_task)
    prof = cProfile.Profile()
    prof.enable()
    for _ in range(n):
        op()
    prof.disable()
    print(f"\n-- cProfile {bench_name}[{profile}] "
          f"({n} ops, top 20 by cumulative time) --", file=sys.stderr)
    pstats.Stats(prof, stream=sys.stderr).sort_stats("cumulative") \
        .print_stats(20)


def measure_cell(bench_name: str, profile: str, iters: int, reps: int,
                 virtual: bool = False) -> float:
    """One (benchmark, profile) matrix cell — the parallel work unit."""
    setup, _default_n = _BENCH_BY_NAME[bench_name]
    if virtual:
        return round(_measure_virtual(setup, profile, iters), 3)
    value = round(_measure(setup, profile, iters, reps), 3)
    if _cprofile_enabled():
        _profile_cell(bench_name, profile, setup, iters)
    return value


def run_benchmarks(scale: float = 1.0, reps: int = 3, jobs: int = 1,
                   virtual: bool = False, verbose: bool = True,
                   only: "List[str] | None" = None) -> Dict[str, float]:
    """Run the benchmark × profile matrix; returns key -> value.

    Values are median wall-clock µs/op, or virtual ns/op with
    ``virtual=True``.  The matrix is fanned out over ``jobs`` worker
    processes; the result dict is built in matrix order regardless of
    completion order, so key order (and, in virtual mode, the values)
    match a serial run exactly.  ``only`` restricts the run to the named
    benchmarks (every name must exist in ``BENCHMARKS``).
    """
    selected = BENCHMARKS
    if only is not None:
        unknown = sorted(set(only) - set(_BENCH_BY_NAME))
        if unknown:
            raise KeyError(f"unknown benchmark name(s): {', '.join(unknown)}")
        selected = [row for row in BENCHMARKS if row[0] in only]
    cells = [(name, profile, max(1, int(n * scale)))
             for name, _setup, n in selected
             for profile in PROFILES]
    tasks: List[parallel.TaskSpec] = [
        (f"{name}[{profile}]", measure_cell,
         (name, profile, iters, reps, virtual))
        for name, profile, iters in cells]
    results = parallel.run_tasks(tasks, jobs=jobs, progress=False)
    out: Dict[str, float] = {}
    unit = "ns/op(virtual)" if virtual else "us/op"
    for result in results:
        out[result.name] = result.value
        if verbose:
            print(f"  {result.name:32s} {result.value:10.2f} {unit}"
                  f"   [{result.wall_clock_s:.2f}s on {result.worker}]")
    return out


def print_timing_appendix() -> None:
    """Markdown appendix separating compile cost from execute cost.

    The ``trace_replay`` cell times execution only (compilation happens
    in setup); this table is where the compile overhead shows up, so it
    can be audited instead of hiding in — or silently inflating — the
    op/s numbers.
    """
    print()
    print("## Trace-compile timing (not part of the op/s numbers)")
    print()
    print("| profile | events | compile (ms) | compile (us/event) |")
    print("|---------|--------|--------------|--------------------|")
    for profile in PROFILES:
        trace = build_loop_trace(profile=profile)
        program = compile_trace(trace)
        n = len(trace.events)
        ms = program.compile_wall_s * 1e3
        print(f"| {profile} | {n} | {ms:.2f} | {ms * 1e3 / n:.2f} |")
    _print_memo_appendix()
    _print_plan_appendix()


def _print_memo_appendix() -> None:
    """Resolution-memo hit/flush counters over a representative workload.

    Host-side telemetry only (``repro.core.resmemo``): the counters live
    outside ``Stats`` precisely so the memo cannot perturb golden
    counters, which is why they are reported here rather than in any
    virtual-cost table.  The sampled workload is 50 ``stat_churn`` ops
    (whose per-op rename flips exercise the flush path — each flush
    discards the whole memo, so the churn phase alone never replays)
    followed by a warm phase of repeated stats, where entries survive
    long enough to be confirmed and hit.
    """
    print()
    print("## Resolution-memo counters "
          "(host-side; stat_churn + warm stats)")
    print()
    if not _memo_enabled():
        print("resolution memo disabled (--memo off / "
              "REPRO_RESOLUTION_MEMO)")
        return
    print("| profile | hits | misses | stale | flushes | entries |")
    print("|---------|------|--------|-------|---------|---------|")
    for profile in PROFILES:
        kernel, task, bind = _setup_stat_churn(profile)
        op = bind(kernel, task)
        for _ in range(50):
            op()
        for _ in range(4):
            for i in range(8):
                kernel.sys.stat(task, f"/s/hot/f{i}")
        memo = kernel.memo
        print(f"| {profile} | {memo.hits} | {memo.misses} | {memo.stale} "
              f"| {memo.flushes} | {len(memo)} |")


def _print_plan_appendix() -> None:
    """Charge-plan capture/apply counters over the replay cells.

    Host-side telemetry only (``ChargePlanRegistry.telemetry()``): like
    the memo counters, plan bookkeeping lives outside ``Stats`` so it
    cannot perturb golden counters.  Sampled over six back-to-back
    passes of the ``trace_replay`` loop trace (warm → capture → confirm
    → apply) plus one ``multi_task_replay`` drain, so both the
    whole-pass and the per-segment plan paths report.
    """
    print()
    print("## Charge-plan counters (host-side; 6x trace_replay pass + "
          "1x multi_task_replay drain)")
    print()
    if not _plans_enabled():
        print("charge plans disabled (--plans off / REPRO_CHARGE_PLANS)")
        return
    print("| profile | compiled | applied | task_confirms "
          "| patched | invalidated | fallbacks |")
    print("|---------|----------|---------|---------------"
          "|---------|-------------|-----------|")
    for profile in PROFILES:
        kernel, task, bind = _setup_trace_replay(profile)
        op = bind(kernel, task)
        for _ in range(6):
            op()
        mt_kernel, mt_tasks, mt_bind = _setup_multi_task_replay(profile)
        mt_bind(mt_kernel, mt_tasks)()
        tel = kernel.costs.plans.telemetry()
        for key, value in mt_kernel.costs.plans.telemetry().items():
            tel[key] = tel.get(key, 0) + value
        print(f"| {profile} | {tel['compiled']} | {tel['applied']} "
              f"| {tel['task_confirms']} | {tel['patched']} "
              f"| {tel['invalidated']} | {tel['fallbacks']} |")


# -- regression check -----------------------------------------------------

def print_comparison(results: Dict[str, float], baseline_json: str,
                     threshold: float) -> int:
    """Per-cell delta table: fresh results vs. a committed results file.

    One command instead of manual JSON diffing: for every cell in either
    set, print baseline and current values, the delta, the ×-factor, and
    pass/fail against the same fractional gate ``--check`` uses (a cell
    only *fails* when it regressed by more than ``threshold``; faster is
    always a pass).  Returns 1 if any shared cell failed the gate, else
    0.  Cells present on only one side are reported but never fail —
    they are new or retired benchmarks, not regressions.
    """
    with open(baseline_json) as fh:
        payload = json.load(fh)
    baseline = payload.get("results", payload)
    units = payload.get("units", "us_per_op")
    unit = "ns/op" if units.startswith("virtual") else "us/op"
    print()
    print(f"## Delta vs {baseline_json} (gate: +{threshold:.0%})")
    print()
    print(f"| cell | baseline ({unit}) | current ({unit}) "
          "| delta | factor | gate |")
    print("|------|------|------|-------|--------|------|")
    failed = False
    keys = list(baseline) + [k for k in results if k not in baseline]
    for key in keys:
        base = baseline.get(key)
        cur = results.get(key)
        if base is None or cur is None:
            side = "baseline only" if cur is None else "new cell"
            val = base if cur is None else cur
            print(f"| {key} | {base if base is not None else '—'} "
                  f"| {cur if cur is not None else '—'} | {side} | — | — |")
            continue
        ratio = cur / base if base else float("inf")
        status = "FAIL" if ratio > 1.0 + threshold else "ok"
        if status == "FAIL":
            failed = True
        print(f"| {key} | {base:.2f} | {cur:.2f} | {cur - base:+.2f} "
              f"| {ratio:.2f}x | {status} |")
    print()
    if failed:
        print(f"FAIL: at least one cell regressed more than "
              f"{threshold:.0%} vs {baseline_json}")
        return 1
    print(f"OK: no cell regressed more than {threshold:.0%} vs "
          f"{baseline_json}")
    return 0


def check_regressions(pytest_json: str, baseline_json: str,
                      threshold: float) -> int:
    """Compare a pytest-benchmark export against the committed baseline.

    Returns a process exit code: 0 if every mapped benchmark's median is
    within ``threshold`` (fractional, e.g. 0.25) of the baseline AND
    every baseline key was covered by a mapped export entry.  A baseline
    key with no matching pytest result means the gate silently stopped
    gating — that is a failure (exit 2), not a skip.
    """
    with open(pytest_json) as fh:
        bench_data = json.load(fh)
    with open(baseline_json) as fh:
        baseline = json.load(fh)["results"]

    missing = [key for key in REQUIRED_BASELINE_KEYS if key not in baseline]
    if missing:
        print("error: baseline is missing required write-path cells "
              "(a baseline without them un-gates the mutation path):",
              file=sys.stderr)
        for key in missing:
            print(f"  {key}", file=sys.stderr)
        return 2

    failed = False
    covered = set()
    for bench in bench_data.get("benchmarks", []):
        key = PYTEST_NAME_MAP.get(bench["name"])
        if key is None or key not in baseline:
            continue
        covered.add(key)
        median_us = bench["stats"]["median"] * 1e6
        base_us = baseline[key]
        ratio = median_us / base_us if base_us else float("inf")
        status = "ok"
        if ratio > 1.0 + threshold:
            status = "REGRESSION"
            failed = True
        print(f"  {bench['name']:44s} {median_us:9.2f} us "
              f"(baseline {base_us:9.2f} us, {ratio:5.2f}x) {status}")
    if not covered:
        print("error: no benchmarks in the export matched the baseline",
              file=sys.stderr)
        return 2
    uncovered = sorted(set(baseline) - covered)
    if uncovered:
        print("error: baseline keys with no mapped pytest result "
              "(unmapped benchmarks are ungated regressions):",
              file=sys.stderr)
        for key in uncovered:
            print(f"  {key}", file=sys.stderr)
        return 2
    if failed:
        print(f"FAIL: at least one median regressed more than "
              f"{threshold:.0%} vs {baseline_json}")
        return 1
    print(f"OK: {len(covered)} benchmark(s) within {threshold:.0%} of "
          f"baseline, all {len(baseline)} baseline keys covered")
    return 0


# -- CLI ------------------------------------------------------------------

def main(argv=None) -> int:
    """CLI entry point (``repro-speed``): run benchmarks or ``--check``."""
    parser = argparse.ArgumentParser(
        prog="repro-speed",
        description="Measure (or regression-check) simulator wall-clock "
                    "speed.")
    parser.add_argument("--output", default="BENCH_simspeed.json",
                        help="where to write results (default: %(default)s)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="iteration-count multiplier (e.g. 0.1 for a "
                             "quick smoke run)")
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions per benchmark; median is kept")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the benchmark matrix "
                             "(default: 1; 0 means one per CPU)")
    parser.add_argument("--virtual", action="store_true",
                        help="record deterministic virtual ns/op instead "
                             "of wall-clock us/op (byte-identical across "
                             "runs, hosts, and --jobs values)")
    parser.add_argument("--only", metavar="NAMES",
                        help="comma-separated benchmark names to run "
                             "(e.g. trace_replay); unknown names are an "
                             "error")
    parser.add_argument("--cprofile", action="store_true",
                        help="after timing each cell, run one profiled "
                             "pass and dump its cProfile top-20 (by "
                             "cumulative time) to stderr; timed medians "
                             "are unaffected")
    parser.add_argument("--timing", action="store_true",
                        help="print markdown appendices reporting trace "
                             "compile time, resolution-memo hit/flush "
                             "counters, and charge-plan capture/apply "
                             "counters separately from execute time")
    parser.add_argument("--memo", choices=("on", "off"), default=None,
                        help="enable/disable the resolution memo in every "
                             "benchmark kernel (default: on; virtual "
                             "results are identical either way)")
    parser.add_argument("--plans", choices=("on", "off"), default=None,
                        help="enable/disable charge plans in the replay "
                             "cells (default: on; virtual results are "
                             "identical either way)")
    parser.add_argument("--check", metavar="PYTEST_JSON",
                        help="pytest-benchmark JSON export to check against "
                             "the committed baseline instead of running")
    parser.add_argument("--compare", metavar="BASELINE_JSON",
                        help="after running, print a per-cell delta table "
                             "(value, x-factor, pass/fail vs --threshold) "
                             "against a previously written results file; "
                             "exits 1 if any shared cell regressed past "
                             "the gate")
    parser.add_argument("--baseline", default="BENCH_simspeed.json",
                        help="baseline file for --check (default: "
                             "%(default)s)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional median regression for "
                             "--check (default: %(default)s)")
    args = parser.parse_args(argv)

    if args.memo is not None:
        # Via the environment so --jobs worker processes inherit it.
        os.environ["REPRO_RESOLUTION_MEMO"] = args.memo
    if args.plans is not None:
        os.environ["REPRO_CHARGE_PLANS"] = args.plans
    if args.cprofile:
        os.environ["REPRO_CPROFILE"] = "1"

    if args.check:
        return check_regressions(args.check, args.baseline, args.threshold)

    only = None
    if args.only:
        only = [name.strip() for name in args.only.split(",") if name.strip()]
        unknown = sorted(set(only) - {name for name, _s, _n in BENCHMARKS})
        if unknown:
            print(f"error: unknown benchmark name(s): {', '.join(unknown)}",
                  file=sys.stderr)
            print(f"known: {', '.join(name for name, _s, _n in BENCHMARKS)}",
                  file=sys.stderr)
            return 2

    if args.virtual:
        print("Simulator speed (virtual ns per simulated op — "
              "deterministic):")
    else:
        print("Simulator speed (median wall-clock us per simulated op):")
    results = run_benchmarks(scale=args.scale, reps=args.reps,
                             jobs=args.jobs, virtual=args.virtual,
                             only=only)
    if args.timing:
        print_timing_appendix()
    payload = {
        "schema": ("dcache-repro-simspeed-virtual/1" if args.virtual
                   else "dcache-repro-simspeed/1"),
        "units": "virtual_ns_per_op" if args.virtual else "us_per_op",
        "reps": args.reps,
        "scale": args.scale,
        "results": results,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")
    if args.compare:
        return print_comparison(results, args.compare, args.threshold)
    return 0


if __name__ == "__main__":
    sys.exit(main())
