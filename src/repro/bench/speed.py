"""Simulator speed benchmarks: wall-clock cost of simulated syscalls.

Unlike every ``exp_*`` module (which measures *virtual* time inside the
simulation), this module measures how fast the simulator itself runs on
the host — the metric the hot-path optimizations (component-interned
signature hashing, path-parse memoization, the ``charge_in`` cost fast
path) are meant to improve.  Virtual-time results are bit-identical
before and after those optimizations (see ``tests/test_golden_counters``);
only these wall-clock numbers move.

Two modes:

``repro-speed [--output BENCH_simspeed.json]``
    Run the benchmark loops (warm stat, create/unlink, readdir,
    rename-invalidation, and rename-churn on all three kernel profiles)
    and write median microseconds-per-operation to a JSON file.  The
    committed ``BENCH_simspeed.json`` at the repo root is generated this
    way.

``repro-speed --check pytest-benchmark.json [--baseline ...]``
    Compare a pytest-benchmark JSON export (from
    ``pytest benchmarks/test_simulator_speed.py --benchmark-json=...``)
    against the committed baseline and exit non-zero if any benchmark's
    median regressed by more than ``--threshold`` (default 25%).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from typing import Callable, Dict, List, Tuple

from repro import O_CREAT, O_RDWR, make_kernel
from repro.workloads import lmbench
from repro.workloads.tree import build_flat_dir

#: Kernel profiles every benchmark runs against.
PROFILES = ("baseline", "optimized", "optimized-lazy")

#: pytest-benchmark test name -> result key in BENCH_simspeed.json.
#: Used by ``--check`` to line CI benchmark runs up with the committed
#: baseline numbers.
PYTEST_NAME_MAP = {
    "test_warm_stat_wallclock[baseline]": "warm_stat[baseline]",
    "test_warm_stat_wallclock[optimized]": "warm_stat[optimized]",
    "test_warm_stat_wallclock[optimized-lazy]": "warm_stat[optimized-lazy]",
    "test_create_unlink_wallclock[optimized]": "create_unlink[optimized]",
    "test_create_unlink_wallclock[optimized-lazy]":
        "create_unlink[optimized-lazy]",
    "test_readdir_wallclock": "readdir[optimized]",
    "test_rename_invalidation_wallclock[optimized]":
        "rename_inval[optimized]",
    "test_rename_invalidation_wallclock[optimized-lazy]":
        "rename_inval[optimized-lazy]",
    "test_rename_churn_wallclock[optimized]": "rename_churn[optimized]",
    "test_rename_churn_wallclock[optimized-lazy]":
        "rename_churn[optimized-lazy]",
}


# -- benchmark setup ------------------------------------------------------

def _setup_warm_stat(profile: str) -> Callable[[], None]:
    kernel = make_kernel(profile)
    task = lmbench.prepare_lookup_tree(kernel)
    stat = kernel.sys.stat
    path = lmbench.LONG_PATH
    stat(task, path)  # warm the caches; steady-state is what we measure

    def op() -> None:
        stat(task, path)

    return op


def _setup_create_unlink(profile: str) -> Callable[[], None]:
    kernel = make_kernel(profile)
    task = kernel.spawn_task(uid=0, gid=0)
    kernel.sys.mkdir(task, "/w")
    sys_open, sys_close = kernel.sys.open, kernel.sys.close
    sys_unlink = kernel.sys.unlink
    counter = [0]

    def op() -> None:
        path = f"/w/f{counter[0]}"
        counter[0] += 1
        fd = sys_open(task, path, O_CREAT | O_RDWR)
        sys_close(task, fd)
        sys_unlink(task, path)

    return op


def _setup_readdir(profile: str) -> Callable[[], None]:
    kernel = make_kernel(profile)
    task = kernel.spawn_task(uid=0, gid=0)
    build_flat_dir(kernel, task, "/big", 500)
    listdir = kernel.sys.listdir
    listdir(task, "/big")

    def op() -> None:
        listdir(task, "/big")

    return op


def _setup_rename_inval(profile: str) -> Callable[[], None]:
    """Rename a warm directory back and forth, re-statting under it.

    Each op pays the mutation-side invalidation cost (seq bumps, DLHT
    eviction on the optimized kernel) and then repopulates the caches
    with a stat — the simulator-speed view of the paper's deliberate
    lookup/mutation trade-off.
    """
    kernel = make_kernel(profile)
    task = kernel.spawn_task(uid=0, gid=0)
    kernel.sys.mkdir(task, "/r")
    kernel.sys.mkdir(task, "/r/d0")
    kernel.sys.mkdir(task, "/r/d0/sub")
    fd = kernel.sys.open(task, "/r/d0/sub/f", O_CREAT | O_RDWR)
    kernel.sys.close(task, fd)
    kernel.sys.stat(task, "/r/d0/sub/f")
    rename, stat = kernel.sys.rename, kernel.sys.stat
    flip = [0]

    def op() -> None:
        src, dst = ("/r/d0", "/r/d1") if flip[0] == 0 else ("/r/d1", "/r/d0")
        flip[0] ^= 1
        rename(task, src, dst)
        stat(task, dst + "/sub/f")

    return op


def _setup_rename_churn(profile: str) -> Callable[[], None]:
    """Mutation-heavy churn over a warm ~50-file cached subtree.

    Each op renames a directory holding 50 warm files and re-stats a
    handful of them.  Eager coherence pays a full subtree shootdown per
    rename; lazy coherence pays one epoch stamp plus touch-time
    revalidation of only the files actually re-statted — the workload
    the ``optimized-lazy`` profile exists for.
    """
    kernel = make_kernel(profile)
    task = kernel.spawn_task(uid=0, gid=0)
    kernel.sys.mkdir(task, "/c")
    kernel.sys.mkdir(task, "/c/d0")
    stat = kernel.sys.stat
    rename = kernel.sys.rename
    for i in range(50):
        fd = kernel.sys.open(task, f"/c/d0/f{i}", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        stat(task, f"/c/d0/f{i}")
    flip = [0]

    def op() -> None:
        src, dst = ("/c/d0", "/c/d1") if flip[0] == 0 else ("/c/d1", "/c/d0")
        flip[0] ^= 1
        rename(task, src, dst)
        for i in range(0, 50, 10):
            stat(task, f"{dst}/f{i}")

    return op


BENCHMARKS: List[Tuple[str, Callable[[str], Callable[[], None]], int]] = [
    ("warm_stat", _setup_warm_stat, 10_000),
    ("create_unlink", _setup_create_unlink, 1_000),
    ("readdir", _setup_readdir, 100),
    ("rename_inval", _setup_rename_inval, 1_000),
    ("rename_churn", _setup_rename_churn, 500),
]


# -- timing ---------------------------------------------------------------

def _measure(setup: Callable[[str], Callable[[], None]], profile: str,
             n: int, reps: int) -> float:
    """Median microseconds per op over ``reps`` fresh-kernel repetitions."""
    samples = []
    for _ in range(reps):
        op = setup(profile)
        t0 = time.perf_counter()
        for _ in range(n):
            op()
        samples.append((time.perf_counter() - t0) / n * 1e6)
    return statistics.median(samples)


def run_benchmarks(scale: float = 1.0, reps: int = 3,
                   verbose: bool = True) -> Dict[str, float]:
    """Run every benchmark on every profile; returns key -> µs/op."""
    results: Dict[str, float] = {}
    for name, setup, n in BENCHMARKS:
        iters = max(1, int(n * scale))
        for profile in PROFILES:
            key = f"{name}[{profile}]"
            results[key] = round(_measure(setup, profile, iters, reps), 3)
            if verbose:
                print(f"  {key:32s} {results[key]:10.2f} us/op")
    return results


# -- regression check -----------------------------------------------------

def check_regressions(pytest_json: str, baseline_json: str,
                      threshold: float) -> int:
    """Compare a pytest-benchmark export against the committed baseline.

    Returns a process exit code: 0 if every mapped benchmark's median is
    within ``threshold`` (fractional, e.g. 0.25) of the baseline.
    """
    with open(pytest_json) as fh:
        bench_data = json.load(fh)
    with open(baseline_json) as fh:
        baseline = json.load(fh)["results"]

    failed = False
    checked = 0
    for bench in bench_data.get("benchmarks", []):
        key = PYTEST_NAME_MAP.get(bench["name"])
        if key is None or key not in baseline:
            continue
        checked += 1
        median_us = bench["stats"]["median"] * 1e6
        base_us = baseline[key]
        ratio = median_us / base_us if base_us else float("inf")
        status = "ok"
        if ratio > 1.0 + threshold:
            status = "REGRESSION"
            failed = True
        print(f"  {bench['name']:44s} {median_us:9.2f} us "
              f"(baseline {base_us:9.2f} us, {ratio:5.2f}x) {status}")
    if checked == 0:
        print("error: no benchmarks in the export matched the baseline",
              file=sys.stderr)
        return 2
    if failed:
        print(f"FAIL: at least one median regressed more than "
              f"{threshold:.0%} vs {baseline_json}")
        return 1
    print(f"OK: {checked} benchmark(s) within {threshold:.0%} of baseline")
    return 0


# -- CLI ------------------------------------------------------------------

def main(argv=None) -> int:
    """CLI entry point (``repro-speed``): run benchmarks or ``--check``."""
    parser = argparse.ArgumentParser(
        prog="repro-speed",
        description="Measure (or regression-check) simulator wall-clock "
                    "speed.")
    parser.add_argument("--output", default="BENCH_simspeed.json",
                        help="where to write results (default: %(default)s)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="iteration-count multiplier (e.g. 0.1 for a "
                             "quick smoke run)")
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions per benchmark; median is kept")
    parser.add_argument("--check", metavar="PYTEST_JSON",
                        help="pytest-benchmark JSON export to check against "
                             "the committed baseline instead of running")
    parser.add_argument("--baseline", default="BENCH_simspeed.json",
                        help="baseline file for --check (default: "
                             "%(default)s)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional median regression for "
                             "--check (default: %(default)s)")
    args = parser.parse_args(argv)

    if args.check:
        return check_regressions(args.check, args.baseline, args.threshold)

    print("Simulator speed (median wall-clock us per simulated op):")
    results = run_benchmarks(scale=args.scale, reps=args.reps)
    payload = {
        "schema": "dcache-repro-simspeed/1",
        "units": "us_per_op",
        "reps": args.reps,
        "scale": args.scale,
        "results": results,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
