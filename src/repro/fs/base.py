"""The low-level file system interface the VFS programs against.

This is the analog of the Linux super_block / inode_operations boundary:
the VFS calls into a :class:`FileSystem` only on a dcache miss (or on a
mutation), and translates the returned :class:`NodeInfo` into VFS inodes
and dentries.  File systems never see dentries, mount points, or
credentials — permission checking stays in the VFS, which is the paper's
argument for why full-path caching must live above the FS (§2.3, §7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro import errors

#: dirent type codes (subset of Linux's DT_*).
DT_REG = "reg"
DT_DIR = "dir"
DT_LNK = "lnk"

#: File-type bits in ``mode`` (simplified stat.S_IF*).
S_IFREG = 0o100000
S_IFDIR = 0o040000
S_IFLNK = 0o120000
S_IFMT = 0o170000

#: Permission-bit helpers used across the VFS.
MODE_BITS = 0o7777


def mode_filetype(mode: int) -> str:
    """Map an on-disk mode word to a DT_* code."""
    kind = mode & S_IFMT
    if kind == S_IFDIR:
        return DT_DIR
    if kind == S_IFLNK:
        return DT_LNK
    return DT_REG


@dataclass(frozen=True)
class FsUsage:
    """statfs(2)-style aggregate numbers."""

    fstype: str
    total_blocks: int
    used_blocks: int
    inode_count: int


@dataclass
class NodeInfo:
    """Everything the VFS needs to materialize an inode.

    Attributes:
        ino: file-system-local inode number.
        mode: type bits | permission bits.
        uid / gid: ownership.
        nlink: hard link count.
        size: byte size (directories report entry count * 32).
        symlink_target: link body for symlinks, else ``None``.
    """

    ino: int
    mode: int
    uid: int
    gid: int
    nlink: int
    size: int
    symlink_target: Optional[str] = None
    #: Last content/entry modification, in virtual ns.
    mtime_ns: int = 0

    @property
    def filetype(self) -> str:
        return mode_filetype(self.mode)

    @property
    def is_dir(self) -> bool:
        return self.filetype == DT_DIR

    @property
    def is_symlink(self) -> bool:
        return self.filetype == DT_LNK


class FileSystem:
    """Abstract low-level file system.

    Subclasses implement the storage; this base class provides argument
    validation shared by all of them.  All methods operate on inode
    numbers, never paths — path resolution is the VFS's job.
    """

    #: Human-readable FS type ("simext", "tmpfs", "proc").
    fstype = "abstract"

    #: Whether the baseline kernel creates negative dentries for misses on
    #: this FS.  Linux skips them on pseudo file systems; the optimized
    #: kernel caches negatives everywhere (§5.2).
    baseline_negative_dentries = True

    #: Stateless network file systems (NFSv2/3) must revalidate every
    #: cached component at the server (§4.3); the VFS calls
    #: :meth:`revalidate` per cached hit and the optimized kernel keeps
    #: such superblocks out of its direct lookup structures.
    requires_revalidation = False

    #: Whether the VFS may mark this FS's directories DIR_COMPLETE
    #: (§5.1).  Only sound when every content change goes through the
    #: VFS: pseudo file systems (provider-generated entries) and network
    #: file systems (other clients) must opt out.
    supports_completeness = True

    #: Root inode number.
    root_ino = 1

    #: Set by the VFS (one callback per superblock) so a file system
    #: that recycles inode numbers can evict the stale VFS inode before
    #: the number is reused; see :meth:`iget`/:meth:`iput`.
    on_ino_reclaim = None

    def iget(self, ino: int) -> None:
        """VFS notification: an open file description now holds ``ino``.

        Paired with :meth:`iput` (mirroring the dentry pin that keeps the
        path alive).  File systems that defer resource reclamation past
        unlink — Unix unlink-while-open semantics — use the pair to run
        the final-iput cleanup; the default is a no-op.
        """

    def iput(self, ino: int) -> None:
        """VFS notification: an open handle on ``ino`` went away."""

    def revalidate(self, dir_ino: int, name: str,
                   cached_ino: "Optional[int]") -> "Optional[NodeInfo]":
        """Revalidate a cached entry (only called when
        ``requires_revalidation``); returns the current server truth."""
        raise NotImplementedError

    # -- reads -------------------------------------------------------------

    def getattr(self, ino: int) -> NodeInfo:
        raise NotImplementedError

    def peek(self, ino: int) -> NodeInfo:
        """Uncharged metadata read for VFS mirror maintenance.

        After a mutation the VFS refreshes the affected directory's
        in-memory inode (size, nlink) — in a real kernel that update is
        free because the VFS inode *is* the FS's in-memory inode, so no
        cost is charged here.
        """
        raise NotImplementedError

    def lookup(self, dir_ino: int, name: str) -> Optional[NodeInfo]:
        """Find ``name`` in directory ``dir_ino``; ``None`` if absent."""
        raise NotImplementedError

    def readdir(self, dir_ino: int) -> Iterator[Tuple[str, int, str]]:
        """Yield ``(name, ino, dtype)`` for every entry (no '.'/'..')."""
        raise NotImplementedError

    def readlink(self, ino: int) -> str:
        info = self.getattr(ino)
        if not info.is_symlink:
            raise errors.EINVAL(message="readlink of non-symlink")
        assert info.symlink_target is not None
        return info.symlink_target

    def read(self, ino: int, offset: int, length: int) -> bytes:
        raise NotImplementedError

    # -- mutations -----------------------------------------------------------

    def create(self, dir_ino: int, name: str, mode: int, uid: int,
               gid: int) -> NodeInfo:
        raise NotImplementedError

    def mkdir(self, dir_ino: int, name: str, mode: int, uid: int,
              gid: int) -> NodeInfo:
        raise NotImplementedError

    def symlink(self, dir_ino: int, name: str, target: str, uid: int,
                gid: int) -> NodeInfo:
        raise NotImplementedError

    def link(self, dir_ino: int, name: str, target_ino: int) -> NodeInfo:
        raise NotImplementedError

    def unlink(self, dir_ino: int, name: str) -> None:
        raise NotImplementedError

    def rmdir(self, dir_ino: int, name: str) -> None:
        raise NotImplementedError

    def rename(self, old_dir: int, old_name: str, new_dir: int,
               new_name: str) -> None:
        raise NotImplementedError

    def setattr(self, ino: int, mode: Optional[int] = None,
                uid: Optional[int] = None, gid: Optional[int] = None,
                size: Optional[int] = None,
                mtime_ns: Optional[int] = None) -> NodeInfo:
        raise NotImplementedError

    def statfs(self) -> "FsUsage":
        """Aggregate usage; concrete file systems override."""
        raise errors.ENOTSUP(message=f"{self.fstype}: no statfs")

    def write(self, ino: int, offset: int, data: bytes) -> int:
        raise NotImplementedError

    # -- extended attributes -----------------------------------------------------

    def getxattr(self, ino: int, name: str) -> bytes:
        raise errors.ENOTSUP(message=f"{self.fstype}: no xattrs")

    def setxattr(self, ino: int, name: str, value: bytes) -> None:
        raise errors.ENOTSUP(message=f"{self.fstype}: no xattrs")

    def listxattr(self, ino: int) -> "list":
        raise errors.ENOTSUP(message=f"{self.fstype}: no xattrs")

    def removexattr(self, ino: int, name: str) -> None:
        raise errors.ENOTSUP(message=f"{self.fstype}: no xattrs")

    # -- cache management ------------------------------------------------------

    def drop_caches(self) -> None:
        """Forget any in-memory state (for cold-cache experiments)."""
