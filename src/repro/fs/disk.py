"""Simulated block device with a seek/transfer latency model.

The device does not store data — the file systems keep their contents in
Python structures — it *prices* block accesses.  A read of the block after
the last one read is sequential (transfer cost only); anything else pays a
seek.  This is enough to reproduce the warm/cold asymmetry of Tables 1–2:
a cold ``find`` over a source tree is dominated by device time, and the
dcache optimizations are in the noise there, exactly as the paper reports.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.sim.costs import CostModel

BLOCK_SIZE = 4096


class BlockDevice:
    """A latency model for a single rotational disk.

    Args:
        costs: cost model to charge ``disk_seek`` / ``disk_seq_block`` to.
        size_blocks: device capacity.
    """

    def __init__(self, costs: CostModel, size_blocks: int = 1 << 22):
        self.costs = costs
        self.size_blocks = size_blocks
        self._head: Optional[int] = None
        self.reads = 0
        self.writes = 0
        self.seeks = 0

    def _access(self, block: int) -> None:
        if not 0 <= block < self.size_blocks:
            raise ValueError(f"block {block} out of range")
        if self._head is not None and block == self._head + 1:
            self.costs.charge("disk_seq_block")
        else:
            self.costs.charge("disk_seek")
            self.costs.charge("disk_seq_block")
            self.seeks += 1
        self._head = block

    def read_block(self, block: int) -> None:
        """Charge the cost of reading one block."""
        self._access(block)
        self.reads += 1

    def write_block(self, block: int) -> None:
        """Charge the cost of writing one block."""
        self._access(block)
        self.writes += 1

    def read_run(self, start: int, count: int) -> None:
        """Charge a readahead run of ``count`` consecutive blocks."""
        for block in range(start, min(start + count, self.size_blocks)):
            self.read_block(block)


class BlockAllocator:
    """First-fit block allocator with locality hints.

    Allocating near a hint keeps related metadata adjacent, which is what
    makes cold scans mostly sequential (cheap) on the simulated disk.
    """

    def __init__(self, size_blocks: int, first_free: int = 0):
        self.size_blocks = size_blocks
        self._used: Set[int] = set(range(first_free))
        self._cursor = first_free

    def allocate(self, near: Optional[int] = None) -> int:
        start = near + 1 if near is not None else self._cursor
        block = start
        scanned = 0
        while scanned < self.size_blocks:
            if block >= self.size_blocks:
                block = 0
            if block not in self._used:
                self._used.add(block)
                self._cursor = block + 1
                return block
            block += 1
            scanned += 1
        raise MemoryError("simulated device full")

    def free(self, block: int) -> None:
        self._used.discard(block)

    @property
    def used_count(self) -> int:
        return len(self._used)
