"""Simulated block device with a seek/transfer latency model.

The device does not store data — the file systems keep their contents in
Python structures — it *prices* block accesses.  A read of the block after
the last one read is sequential (transfer cost only); anything else pays a
seek.  This is enough to reproduce the warm/cold asymmetry of Tables 1–2:
a cold ``find`` over a source tree is dominated by device time, and the
dcache optimizations are in the noise there, exactly as the paper reports.
"""

from __future__ import annotations

from array import array
from typing import Optional

from repro.sim.costs import CostModel

BLOCK_SIZE = 4096


class BlockDevice:
    """A latency model for a single rotational disk.

    Args:
        costs: cost model to charge ``disk_seek`` / ``disk_seq_block`` to.
        size_blocks: device capacity.
    """

    def __init__(self, costs: CostModel, size_blocks: int = 1 << 22):
        self.costs = costs
        self.size_blocks = size_blocks
        self._head: Optional[int] = None
        self.reads = 0
        self.writes = 0
        self.seeks = 0

    def _access(self, block: int) -> None:
        if not 0 <= block < self.size_blocks:
            raise ValueError(f"block {block} out of range")
        if self._head is not None and block == self._head + 1:
            self.costs.charge("disk_seq_block")
        else:
            self.costs.charge("disk_seek")
            self.costs.charge("disk_seq_block")
            self.seeks += 1
        self._head = block

    def read_block(self, block: int) -> None:
        """Charge the cost of reading one block."""
        self._access(block)
        self.reads += 1

    def write_block(self, block: int) -> None:
        """Charge the cost of writing one block."""
        self._access(block)
        self.writes += 1

    def read_run(self, start: int, count: int) -> None:
        """Charge a readahead run of ``count`` consecutive blocks."""
        for block in range(start, min(start + count, self.size_blocks)):
            self.read_block(block)


#: All 64 bits set: a bitmap word with no free block.
_FULL_WORD = (1 << 64) - 1


class BlockAllocator:
    """First-fit block allocator with locality hints.

    Allocating near a hint keeps related metadata adjacent, which is what
    makes cold scans mostly sequential (cheap) on the simulated disk.

    The free map is a bitmap of 64-bit words (bit set = used), so the
    first-fit scan skips a fully-used region 64 blocks per word compare
    instead of probing a set per block — same allocation order as the
    per-block scan, just found faster.  Padding bits past
    ``size_blocks`` in the last word are permanently marked used so the
    word scan can never run off the device.
    """

    def __init__(self, size_blocks: int, first_free: int = 0):
        self.size_blocks = size_blocks
        nwords = (size_blocks + 63) >> 6
        self._words = array("Q", bytes(8 * nwords))
        # Reserve [0, first_free) (superblock, tables): whole words
        # first, then the partial word.
        whole, rest = first_free >> 6, first_free & 63
        for wi in range(whole):
            self._words[wi] = _FULL_WORD
        if rest:
            self._words[whole] = (1 << rest) - 1
        pad = (nwords << 6) - size_blocks
        if pad:
            self._words[nwords - 1] |= _FULL_WORD ^ ((1 << (64 - pad)) - 1)
        self._used_count = first_free
        self._cursor = first_free

    def _first_free(self, lo: int, hi: int) -> Optional[int]:
        """Lowest free block in ``[lo, hi)``, or None."""
        if lo >= hi:
            return None
        words = self._words
        wi = lo >> 6
        end_wi = (hi + 63) >> 6
        word = words[wi] | ((1 << (lo & 63)) - 1)  # bits below lo: used
        while True:
            if word != _FULL_WORD:
                free = ~word & _FULL_WORD
                block = (wi << 6) + ((free & -free).bit_length() - 1)
                return block if block < hi else None
            wi += 1
            if wi >= end_wi:
                return None
            word = words[wi]

    def allocate(self, near: Optional[int] = None) -> int:
        start = near + 1 if near is not None else self._cursor
        if start >= self.size_blocks:
            start = 0
        block = self._first_free(start, self.size_blocks)
        if block is None:
            block = self._first_free(0, start)
        if block is None:
            raise MemoryError("simulated device full")
        self._words[block >> 6] |= 1 << (block & 63)
        self._used_count += 1
        self._cursor = block + 1
        return block

    def free(self, block: int) -> None:
        mask = 1 << (block & 63)
        wi = block >> 6
        if self._words[wi] & mask:
            self._words[wi] ^= mask
            self._used_count -= 1

    @property
    def used_count(self) -> int:
        return self._used_count
