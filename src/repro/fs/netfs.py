"""Network file systems (§4.3).

The paper's prototype "does not support direct lookup on network file
systems, such as NFS versions 2 and 3": close-to-open consistency on a
stateless protocol forces the client to revalidate every path component
at the server, nullifying any hit-path benefit.  A stateful protocol
with change callbacks (AFS, NFS 4.1) keeps the fastpath viable.

Two client file systems model the dichotomy over a shared
:class:`ExportServer`:

* :class:`NfsLikeFs` — stateless: ``requires_revalidation`` is True, so
  the VFS revalidates each cached component (one RTT each) and the
  optimized kernel refuses to register its dentries in the DLHT.
* :class:`AfsLikeFs` — stateful: the server records which directories a
  client has cached and *breaks callbacks* on mutation; cached entries
  are trusted between callbacks, so the fastpath works.  Server-side
  mutations (another client writing) invalidate through the callback.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Tuple

from repro.fs.base import FileSystem, NodeInfo
from repro.fs.tmpfs import TmpFs
from repro.sim.costs import CostModel

#: Default LAN round trip (client<->server), in virtual ns.
DEFAULT_RTT_NS = 180_000.0


class ExportServer:
    """The server side: a directory tree plus callback bookkeeping."""

    def __init__(self, costs: CostModel, rtt_ns: float = DEFAULT_RTT_NS):
        self.costs = costs
        self.rtt_ns = rtt_ns
        self.backing = TmpFs(costs)
        #: Callback-broken notifications: (dir_ino, name) pairs.
        self._callback: Optional[Callable[[int, str], None]] = None
        self.rpc_count = 0

    def rpc(self) -> None:
        """Charge one client<->server round trip."""
        self.rpc_count += 1
        self.costs.charge_ns("net_rpc", self.rtt_ns)

    def set_callback(self, handler: Callable[[int, str], None]) -> None:
        """AFS-style: the client registers for change notifications."""
        self._callback = handler

    # -- server-side mutations (another client / local process) ------------

    def server_create(self, dir_ino: int, name: str,
                      content: bytes = b"") -> NodeInfo:
        info = self.backing.create(dir_ino, name, 0o644, 0, 0)
        if content:
            self.backing.write(info.ino, 0, content)
        self._notify(dir_ino, name)
        return self.backing.getattr(info.ino)

    def server_unlink(self, dir_ino: int, name: str) -> None:
        self.backing.unlink(dir_ino, name)
        self._notify(dir_ino, name)

    def server_chmod(self, ino: int, mode: int) -> None:
        self.backing.setattr(ino, mode=mode)
        # Attribute changes notify with an empty name: "this inode".
        self._notify(ino, "")

    def _notify(self, dir_ino: int, name: str) -> None:
        if self._callback is not None:
            self._callback(dir_ino, name)


class _NetFsBase(FileSystem):
    """Shared client plumbing: delegate to the server over RPCs."""

    def __init__(self, server: ExportServer):
        self.server = server
        self.costs = server.costs

    @property
    def root_ino(self) -> int:  # type: ignore[override]
        return self.server.backing.root_ino

    def _remote(self) -> TmpFs:
        self.server.rpc()
        return self.server.backing

    # Reads ---------------------------------------------------------------

    def getattr(self, ino: int) -> NodeInfo:
        return self._remote().getattr(ino)

    def peek(self, ino: int) -> NodeInfo:
        # The client's own mutation already refreshed its cached attrs.
        return self.server.backing.getattr(ino)

    def lookup(self, dir_ino: int, name: str) -> Optional[NodeInfo]:
        self.costs.charge("fs_lookup_base")
        return self._remote().lookup(dir_ino, name)

    def readdir(self, dir_ino: int) -> Iterator[Tuple[str, int, str]]:
        return self._remote().readdir(dir_ino)

    def read(self, ino: int, offset: int, length: int) -> bytes:
        return self._remote().read(ino, offset, length)

    # Mutations -------------------------------------------------------------

    def create(self, dir_ino, name, mode, uid, gid) -> NodeInfo:
        return self._remote().create(dir_ino, name, mode, uid, gid)

    def mkdir(self, dir_ino, name, mode, uid, gid) -> NodeInfo:
        return self._remote().mkdir(dir_ino, name, mode, uid, gid)

    def symlink(self, dir_ino, name, target, uid, gid) -> NodeInfo:
        return self._remote().symlink(dir_ino, name, target, uid, gid)

    def link(self, dir_ino, name, target_ino) -> NodeInfo:
        return self._remote().link(dir_ino, name, target_ino)

    def unlink(self, dir_ino, name) -> None:
        self._remote().unlink(dir_ino, name)

    def rmdir(self, dir_ino, name) -> None:
        self._remote().rmdir(dir_ino, name)

    def rename(self, old_dir, old_name, new_dir, new_name) -> None:
        self._remote().rename(old_dir, old_name, new_dir, new_name)

    def setattr(self, ino, mode=None, uid=None, gid=None,
                size=None, mtime_ns=None) -> NodeInfo:
        return self._remote().setattr(ino, mode=mode, uid=uid, gid=gid,
                                      size=size, mtime_ns=mtime_ns)

    def statfs(self):
        self.server.rpc()
        return self.server.backing.statfs()

    def write(self, ino, offset, data) -> int:
        return self._remote().write(ino, offset, data)

    def getxattr(self, ino, name) -> bytes:
        return self._remote().getxattr(ino, name)

    def setxattr(self, ino, name, value) -> None:
        self._remote().setxattr(ino, name, value)

    def listxattr(self, ino) -> list:
        return self._remote().listxattr(ino)

    def removexattr(self, ino, name) -> None:
        self._remote().removexattr(ino, name)


class NfsLikeFs(_NetFsBase):
    """Stateless NFSv2/3-style client: revalidate everything, always."""

    fstype = "nfs-like"
    baseline_negative_dentries = True
    # Other clients mutate the export outside this client's sight.
    supports_completeness = False
    #: The VFS revalidates every cached component at the server, and the
    #: optimized kernel keeps this superblock's dentries out of the DLHT.
    requires_revalidation = True

    def revalidate(self, dir_ino: int, name: str,
                   cached_ino: Optional[int]) -> Optional[NodeInfo]:
        """One-RTT component revalidation; returns the current entry."""
        self.costs.charge("fs_lookup_base")
        return self._remote().lookup(dir_ino, name)


class AfsLikeFs(_NetFsBase):
    """Stateful AFS/NFS4.1-style client: callbacks instead of polling."""

    fstype = "afs-like"
    baseline_negative_dentries = True
    requires_revalidation = False
    # Callback breaks cover entries the client has cached, but a
    # completeness claim ("nothing else exists") cannot be kept coherent
    # for entries it has never seen; opt out.
    supports_completeness = False


def attach_callback_invalidation(kernel, fs: AfsLikeFs) -> None:
    """Wire server callbacks into the client kernel's coherence engine.

    When the server notifies a change under ``(dir_ino, name)``, every
    cached dentry of that inode is shot down (and dropped, so the next
    lookup refetches) — the AFS "callback break".
    """

    def on_change(dir_ino: int, name: str) -> None:
        table = kernel.dcache.inode_table(fs)
        roots = [kernel.dcache._roots.get(id(fs))]
        for root in roots:
            if root is None:
                continue
            victims = []
            for dentry in root.descendants():
                if name and dentry.name == name and dentry.parent and \
                        dentry.parent.inode is not None and \
                        dentry.parent.inode.ino == dir_ino:
                    victims.append(dentry)
                elif not name and dentry.inode is not None and \
                        dentry.inode.ino == dir_ino:
                    victims.append(dentry)
            for dentry in victims:
                if kernel.fast is not None:
                    kernel.coherence.shootdown_subtree(dentry)
                kernel.dcache.d_drop(dentry)
        inode = table.get(dir_ino)
        if inode is not None and not name:
            inode.apply(fs.getattr(dir_ino))

    fs.server.set_callback(on_change)
