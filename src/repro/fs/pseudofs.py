"""PseudoFs: a procfs-like synthetic file system.

Entries are generated on demand from registered providers rather than
stored.  Like Linux's proc/sys/dev, the *baseline* kernel does not create
negative dentries for misses here (``baseline_negative_dentries`` is
False); the optimized kernel caches negatives anyway because its fastpath
hit is much cheaper than regenerating the entry (§5.2).

A provider owns a directory subtree: it maps names to
``(mode, content)`` pairs and may change over time (e.g. a "pid" provider
adding/removing process directories), which exercises revalidation.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple

from repro import errors
from repro.fs import base
from repro.fs.base import FileSystem, NodeInfo
from repro.sim.costs import CostModel

#: A provider returns the current listing of a pseudo directory:
#: name -> (mode, content-or-None-for-subdir).
Provider = Callable[[], Dict[str, Tuple[int, Optional[str]]]]


class PseudoFs(FileSystem):
    """Synthetic file system with generated entries."""

    fstype = "proc"
    baseline_negative_dentries = False
    # Providers mutate listings outside the VFS's sight.
    supports_completeness = False

    def __init__(self, costs: CostModel):
        self.costs = costs
        # Directory ino -> provider; static entries live in _static.
        self._providers: Dict[int, Provider] = {}
        self._static: Dict[int, Dict[str, Tuple[int, Optional[str]]]] = {1: {}}
        self._modes: Dict[int, int] = {1: base.S_IFDIR | 0o555}
        self._parents: Dict[int, int] = {}
        # (dir_ino, name) -> stable child ino, so repeated lookups of a
        # generated entry keep the same identity.
        self._name_inos: Dict[Tuple[int, str], int] = {}
        self._next_ino = 2

    # -- construction API -----------------------------------------------------

    def add_static_dir(self, parent_ino: int, name: str,
                       mode: int = 0o555) -> int:
        """Register a permanent subdirectory; returns its inode number."""
        ino = self._next_ino
        self._next_ino += 1
        self._static.setdefault(parent_ino, {})[name] = (base.S_IFDIR | mode, None)
        self._static[ino] = {}
        self._modes[ino] = base.S_IFDIR | mode
        self._parents[ino] = parent_ino
        self._name_inos[(parent_ino, name)] = ino
        return ino

    def add_static_file(self, parent_ino: int, name: str, content: str = "",
                        mode: int = 0o444) -> int:
        """Register a permanent file; returns its inode number."""
        ino = self._next_ino
        self._next_ino += 1
        self._static.setdefault(parent_ino, {})[name] = (base.S_IFREG | mode,
                                                         content)
        self._modes[ino] = base.S_IFREG | mode
        self._parents[ino] = parent_ino
        self._name_inos[(parent_ino, name)] = ino
        return ino

    def set_provider(self, dir_ino: int, provider: Provider) -> None:
        """Attach a dynamic listing provider to directory ``dir_ino``."""
        self._providers[dir_ino] = provider

    # -- internals -------------------------------------------------------------

    def _listing(self, dir_ino: int) -> Dict[str, Tuple[int, Optional[str]]]:
        if dir_ino not in self._modes or not self._is_dir(dir_ino):
            raise errors.ENOTDIR(message=f"pseudo inode {dir_ino}")
        merged = dict(self._static.get(dir_ino, {}))
        provider = self._providers.get(dir_ino)
        if provider is not None:
            merged.update(provider())
        return merged

    def _is_dir(self, ino: int) -> bool:
        return (self._modes.get(ino, 0) & base.S_IFMT) == base.S_IFDIR

    def _child_ino(self, dir_ino: int, name: str, mode: int) -> int:
        key = (dir_ino, name)
        ino = self._name_inos.get(key)
        if ino is None:
            ino = self._next_ino
            self._next_ino += 1
            self._name_inos[key] = ino
            self._parents[ino] = dir_ino
        self._modes[ino] = mode
        if self._is_dir(ino) and ino not in self._static:
            self._static[ino] = {}
        return ino

    def _content_of(self, ino: int) -> str:
        parent = self._parents.get(ino)
        if parent is None:
            return ""
        for name, child_ino in self._name_inos.items():
            if child_ino == ino and name[0] == parent:
                entry = self._listing(parent).get(name[1])
                return entry[1] or "" if entry else ""
        return ""

    # -- FileSystem API ----------------------------------------------------------

    def peek(self, ino: int) -> NodeInfo:
        return self.getattr(ino)

    def getattr(self, ino: int) -> NodeInfo:
        mode = self._modes.get(ino)
        if mode is None:
            raise errors.ENOENT(message=f"stale pseudo inode {ino}")
        content = "" if self._is_dir(ino) else self._content_of(ino)
        return NodeInfo(ino=ino, mode=mode, uid=0, gid=0, nlink=1,
                        size=len(content))

    def lookup(self, dir_ino: int, name: str) -> Optional[NodeInfo]:
        self.costs.charge("fs_lookup_base")
        self.costs.charge("pseudo_generate")
        entry = self._listing(dir_ino).get(name)
        if entry is None:
            return None
        mode, content = entry
        ino = self._child_ino(dir_ino, name, mode)
        return NodeInfo(ino=ino, mode=mode, uid=0, gid=0, nlink=1,
                        size=len(content or ""))

    def readdir(self, dir_ino: int) -> Iterator[Tuple[str, int, str]]:
        for name, (mode, _content) in self._listing(dir_ino).items():
            self.costs.charge("pseudo_generate")
            ino = self._child_ino(dir_ino, name, mode)
            yield name, ino, base.mode_filetype(mode)

    def read(self, ino: int, offset: int, length: int) -> bytes:
        self.costs.charge("pseudo_generate")
        content = self._content_of(ino).encode()
        data = content[offset:offset + length]
        self.costs.charge("read_write_base", nbytes=len(data))
        return data

    # -- mutations: pseudo file systems are read-only here -------------------------

    def _readonly(self) -> "errors.FsError":
        return errors.EPERM(message=f"{self.fstype} is read-only")

    def create(self, dir_ino, name, mode, uid, gid) -> NodeInfo:
        raise self._readonly()

    def mkdir(self, dir_ino, name, mode, uid, gid) -> NodeInfo:
        raise self._readonly()

    def symlink(self, dir_ino, name, target, uid, gid) -> NodeInfo:
        raise self._readonly()

    def link(self, dir_ino, name, target_ino) -> NodeInfo:
        raise self._readonly()

    def unlink(self, dir_ino, name) -> None:
        raise self._readonly()

    def rmdir(self, dir_ino, name) -> None:
        raise self._readonly()

    def rename(self, old_dir, old_name, new_dir, new_name) -> None:
        raise self._readonly()

    def setattr(self, ino, mode=None, uid=None, gid=None,
                size=None, mtime_ns=None) -> NodeInfo:
        raise self._readonly()

    def write(self, ino, offset, data) -> int:
        raise self._readonly()
