"""TmpFs: a RAM-backed file system (no device, CPU costs only).

Structurally identical to :class:`~repro.fs.simext.SimExtFs` but with no
block device behind it, so misses cost only the FS-call CPU time.  Used by
tests that want the dcache algorithms isolated from disk effects, and as
the substrate for ``/tmp`` in the application workloads.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro import errors
from repro.fs import base
from repro.fs.base import FileSystem, NodeInfo
from repro.sim.costs import CostModel


class _Node:
    __slots__ = ("ino", "mode", "uid", "gid", "nlink", "size",
                 "symlink_target", "entries", "data", "xattrs",
                 "mtime_ns")

    def __init__(self, ino: int, mode: int, uid: int, gid: int):
        self.ino = ino
        self.mode = mode
        self.uid = uid
        self.gid = gid
        self.nlink = 2 if (mode & base.S_IFMT) == base.S_IFDIR else 1
        self.size = 0
        self.symlink_target: Optional[str] = None
        self.entries: Dict[str, Tuple[int, str]] = {}
        self.data = b""
        self.xattrs: Dict[str, bytes] = {}
        self.mtime_ns = 0

    @property
    def is_dir(self) -> bool:
        return (self.mode & base.S_IFMT) == base.S_IFDIR

    def info(self) -> NodeInfo:
        return NodeInfo(ino=self.ino, mode=self.mode, uid=self.uid,
                        gid=self.gid, nlink=self.nlink, size=self.size,
                        symlink_target=self.symlink_target,
                        mtime_ns=self.mtime_ns)


class TmpFs(FileSystem):
    """RAM-backed file system."""

    fstype = "tmpfs"
    baseline_negative_dentries = True

    def __init__(self, costs: CostModel):
        self.costs = costs
        self._nodes: Dict[int, _Node] = {}
        self._next_ino = 1
        root = self._alloc(base.S_IFDIR | 0o1777, 0, 0)
        assert root.ino == self.root_ino

    def _alloc(self, mode: int, uid: int, gid: int) -> _Node:
        node = _Node(self._next_ino, mode, uid, gid)
        node.mtime_ns = self.costs.now_ns
        self._nodes[node.ino] = node
        self._next_ino += 1
        return node

    def _get(self, ino: int) -> _Node:
        try:
            return self._nodes[ino]
        except KeyError:
            raise errors.ENOENT(message=f"stale inode {ino}") from None

    def _get_dir(self, ino: int) -> _Node:
        node = self._get(ino)
        if not node.is_dir:
            raise errors.ENOTDIR(message=f"inode {ino} is not a directory")
        return node

    # -- reads -------------------------------------------------------------

    def getattr(self, ino: int) -> NodeInfo:
        return self._get(ino).info()

    def peek(self, ino: int) -> NodeInfo:
        return self._get(ino).info()

    def lookup(self, dir_ino: int, name: str) -> Optional[NodeInfo]:
        self.costs.charge("fs_lookup_base")
        found = self._get_dir(dir_ino).entries.get(name)
        if found is None:
            return None
        return self._get(found[0]).info()

    def readdir(self, dir_ino: int) -> Iterator[Tuple[str, int, str]]:
        for name, (ino, dtype) in list(self._get_dir(dir_ino).entries.items()):
            self.costs.charge("fs_readdir_entry")
            yield name, ino, dtype

    def read(self, ino: int, offset: int, length: int) -> bytes:
        data = self._get(ino).data[offset:offset + length]
        self.costs.charge("read_write_base", nbytes=len(data))
        return data

    # -- mutations -----------------------------------------------------------

    def _add(self, dir_ino: int, name: str, node: _Node, dtype: str) -> None:
        directory = self._get_dir(dir_ino)
        if name in directory.entries:
            raise errors.EEXIST(message=f"{name!r} exists in inode {dir_ino}")
        directory.entries[name] = (node.ino, dtype)
        directory.size = len(directory.entries) * 32
        directory.mtime_ns = self.costs.now_ns

    def create(self, dir_ino: int, name: str, mode: int, uid: int,
               gid: int) -> NodeInfo:
        self.costs.charge("fs_create")
        node = self._alloc((mode & base.MODE_BITS) | base.S_IFREG, uid, gid)
        self._add(dir_ino, name, node, base.DT_REG)
        return node.info()

    def mkdir(self, dir_ino: int, name: str, mode: int, uid: int,
              gid: int) -> NodeInfo:
        self.costs.charge("fs_create")
        node = self._alloc((mode & base.MODE_BITS) | base.S_IFDIR, uid, gid)
        self._add(dir_ino, name, node, base.DT_DIR)
        self._get_dir(dir_ino).nlink += 1
        return node.info()

    def symlink(self, dir_ino: int, name: str, target: str, uid: int,
                gid: int) -> NodeInfo:
        self.costs.charge("fs_create")
        node = self._alloc(base.S_IFLNK | 0o777, uid, gid)
        node.symlink_target = target
        node.size = len(target)
        self._add(dir_ino, name, node, base.DT_LNK)
        return node.info()

    def link(self, dir_ino: int, name: str, target_ino: int) -> NodeInfo:
        self.costs.charge("fs_create")
        node = self._get(target_ino)
        if node.is_dir:
            raise errors.EPERM(message="hard link to directory")
        self._add(dir_ino, name, node, base.DT_REG)
        node.nlink += 1
        return node.info()

    def unlink(self, dir_ino: int, name: str) -> None:
        self.costs.charge("fs_unlink")
        directory = self._get_dir(dir_ino)
        found = directory.entries.get(name)
        if found is None:
            raise errors.ENOENT(message=f"{name!r} not in inode {dir_ino}")
        node = self._get(found[0])
        if node.is_dir:
            raise errors.EISDIR(message=f"unlink of directory {name!r}")
        del directory.entries[name]
        directory.size = len(directory.entries) * 32
        directory.mtime_ns = self.costs.now_ns
        node.nlink -= 1
        # Zero-nlink orphans are retained: open handles may still read
        # them (Unix unlink-while-open semantics).

    def rmdir(self, dir_ino: int, name: str) -> None:
        self.costs.charge("fs_unlink")
        directory = self._get_dir(dir_ino)
        found = directory.entries.get(name)
        if found is None:
            raise errors.ENOENT(message=f"{name!r} not in inode {dir_ino}")
        child = self._get(found[0])
        if not child.is_dir:
            raise errors.ENOTDIR(message=f"rmdir of non-directory {name!r}")
        if child.entries:
            raise errors.ENOTEMPTY(message=f"directory {name!r} not empty")
        del directory.entries[name]
        directory.nlink -= 1
        child.nlink = 0

    def rename(self, old_dir: int, old_name: str, new_dir: int,
               new_name: str) -> None:
        self.costs.charge("fs_rename")
        src = self._get_dir(old_dir)
        found = src.entries.get(old_name)
        if found is None:
            raise errors.ENOENT(message=f"{old_name!r} not in inode {old_dir}")
        moved_ino, dtype = found
        dst = self._get_dir(new_dir)
        existing = dst.entries.get(new_name)
        if existing is not None:
            target = self._get(existing[0])
            moved = self._get(moved_ino)
            if target.is_dir:
                if not moved.is_dir:
                    raise errors.EISDIR(message=f"{new_name!r} is a directory")
                if target.entries:
                    raise errors.ENOTEMPTY(message=f"{new_name!r} not empty")
                self.rmdir(new_dir, new_name)
            else:
                if moved.is_dir:
                    raise errors.ENOTDIR(message=f"{new_name!r} not a directory")
                self.unlink(new_dir, new_name)
        del src.entries[old_name]
        src.size = len(src.entries) * 32
        src.mtime_ns = self.costs.now_ns
        destination = self._get_dir(new_dir)
        destination.entries[new_name] = (moved_ino, dtype)
        destination.size = len(destination.entries) * 32
        destination.mtime_ns = self.costs.now_ns
        moved = self._get(moved_ino)
        if moved.is_dir and old_dir != new_dir:
            self._get_dir(old_dir).nlink -= 1
            self._get_dir(new_dir).nlink += 1

    def setattr(self, ino: int, mode: Optional[int] = None,
                uid: Optional[int] = None, gid: Optional[int] = None,
                size: Optional[int] = None,
                mtime_ns: Optional[int] = None) -> NodeInfo:
        self.costs.charge("fs_setattr")
        node = self._get(ino)
        if mode is not None:
            node.mode = (node.mode & base.S_IFMT) | (mode & base.MODE_BITS)
        if uid is not None:
            node.uid = uid
        if gid is not None:
            node.gid = gid
        if size is not None and not node.is_dir:
            node.data = node.data[:size].ljust(size, b"\0")
            node.size = size
            node.mtime_ns = self.costs.now_ns
        if mtime_ns is not None:
            node.mtime_ns = mtime_ns
        return node.info()

    def write(self, ino: int, offset: int, data: bytes) -> int:
        node = self._get(ino)
        if node.is_dir:
            raise errors.EISDIR(message="write to directory")
        buf = bytearray(node.data.ljust(offset + len(data), b"\0"))
        buf[offset:offset + len(data)] = data
        node.data = bytes(buf)
        node.size = len(node.data)
        node.mtime_ns = self.costs.now_ns
        self.costs.charge("read_write_base", nbytes=len(data))
        return len(data)

    def statfs(self) -> base.FsUsage:
        used = sum((node.size + 4095) // 4096 for node in
                   self._nodes.values())
        return base.FsUsage(fstype=self.fstype, total_blocks=1 << 20,
                            used_blocks=used,
                            inode_count=len(self._nodes))

    # -- extended attributes -----------------------------------------------------

    def getxattr(self, ino: int, name: str) -> bytes:
        self.costs.charge("fs_xattr")
        try:
            return self._get(ino).xattrs[name]
        except KeyError:
            raise errors.ENOENT(message=f"no xattr {name!r}") from None

    def setxattr(self, ino: int, name: str, value: bytes) -> None:
        self.costs.charge("fs_xattr")
        self._get(ino).xattrs[name] = bytes(value)

    def listxattr(self, ino: int) -> list:
        self.costs.charge("fs_xattr")
        return sorted(self._get(ino).xattrs)

    def removexattr(self, ino: int, name: str) -> None:
        self.costs.charge("fs_xattr")
        node = self._get(ino)
        if name not in node.xattrs:
            raise errors.ENOENT(message=f"no xattr {name!r}")
        del node.xattrs[name]
