"""Buffer cache for file system metadata blocks.

Sits between a file system and its :class:`~repro.fs.disk.BlockDevice`.
A hit charges ``pagecache_hit``; a miss reads a readahead window from the
device.  ``drop_caches`` empties it for cold-cache experiments (Table 2).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.fs.disk import BlockDevice
from repro.sim.costs import CostModel


class PageCache:
    """LRU cache of device block numbers.

    Args:
        costs: cost model for hit charges.
        device: backing device (charged on misses).
        capacity_blocks: cache size; default 256 Ki blocks = 1 GiB.
        readahead: consecutive blocks fetched on a miss.
    """

    def __init__(self, costs: CostModel, device: BlockDevice,
                 capacity_blocks: int = 1 << 18, readahead: int = 16):
        self.costs = costs
        self.device = device
        self.capacity_blocks = capacity_blocks
        self.readahead = readahead
        self._cached: "OrderedDict[int, None]" = OrderedDict()
        self._dirty: set = set()
        self.hits = 0
        self.misses = 0

    def access(self, block: int, for_write: bool = False) -> bool:
        """Touch ``block``; returns True on a cache hit.

        Writes are journaled asynchronously (ext4-style): a write to a
        cached block only dirties it; writeback happens off the measured
        path (:meth:`writeback`).  A write miss performs the
        read-modify-write block fetch.
        """
        if block in self._cached:
            self._cached.move_to_end(block)
            self.costs.charge("pagecache_hit")
            self.hits += 1
            if for_write:
                self._dirty.add(block)
            return True
        self.misses += 1
        if for_write:
            self.device.read_block(block)
            self._insert(block)
            self._dirty.add(block)
        else:
            self.device.read_run(block, self.readahead)
            for fetched in range(block, min(block + self.readahead,
                                            self.device.size_blocks)):
                self._insert(fetched)
        return False

    def writeback(self) -> int:
        """Flush dirty blocks to the device; returns blocks written."""
        written = 0
        for block in sorted(self._dirty):
            self.device.write_block(block)
            written += 1
        self._dirty.clear()
        return written

    def _insert(self, block: int) -> None:
        self._cached[block] = None
        self._cached.move_to_end(block)
        while len(self._cached) > self.capacity_blocks:
            self._cached.popitem(last=False)

    def contains(self, block: int) -> bool:
        return block in self._cached

    def drop_caches(self) -> None:
        """Flush dirty blocks and empty the cache (cold-cache runs)."""
        self.writeback()
        self._cached.clear()

    def __len__(self) -> int:
        return len(self._cached)
