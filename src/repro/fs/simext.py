"""SimExt: an ext2-like on-disk file system over the simulated device.

The contents live in Python structures, but every metadata operation
touches the *block locations* a real ext2/ext4 would: the inode table
block for the inode, and the directory-entry blocks for a name search.
Those touches go through the buffer cache, so a warm run costs CPU-scale
``pagecache_hit`` charges while a cold run pays device time — the
distinction Tables 1 and 2 of the paper rest on.

Directory name search is linear over entry blocks up to
``HTREE_THRESHOLD_BLOCKS``; beyond that the directory is treated as
hash-indexed (like ext4's htree) and a search costs an index-block plus a
leaf-block access regardless of size.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, Iterator, List, Optional, Tuple

from repro import errors
from repro.fs import base
from repro.fs.base import FileSystem, NodeInfo
from repro.fs.disk import BlockAllocator, BlockDevice
from repro.fs.pagecache import PageCache
from repro.sim.costs import CostModel

INODES_PER_BLOCK = 8
ENTRIES_PER_BLOCK = 16
HTREE_THRESHOLD_BLOCKS = 4
INODE_TABLE_FIRST_BLOCK = 1
#: Number of blocks reserved for the inode table (1 M inodes).
INODE_TABLE_BLOCKS = (1 << 20) // INODES_PER_BLOCK


class _Inode:
    """In-structure representation of one on-disk inode."""

    __slots__ = ("ino", "mode", "uid", "gid", "nlink", "size",
                 "symlink_target", "entries", "entry_blocks", "data",
                 "data_blocks", "xattrs", "mtime_ns")

    def __init__(self, ino: int, mode: int, uid: int, gid: int):
        self.ino = ino
        self.mode = mode
        self.uid = uid
        self.gid = gid
        self.nlink = 2 if (mode & base.S_IFMT) == base.S_IFDIR else 1
        self.size = 0
        self.symlink_target: Optional[str] = None
        # Directory payload: insertion-ordered name -> (ino, dtype).
        self.entries: Dict[str, Tuple[int, str]] = {}
        self.entry_blocks: List[int] = []
        # Regular-file payload.
        self.data = b""
        self.data_blocks: List[int] = []
        self.xattrs: Dict[str, bytes] = {}
        self.mtime_ns = 0

    @property
    def is_dir(self) -> bool:
        return (self.mode & base.S_IFMT) == base.S_IFDIR

    def info(self) -> NodeInfo:
        return NodeInfo(ino=self.ino, mode=self.mode, uid=self.uid,
                        gid=self.gid, nlink=self.nlink, size=self.size,
                        symlink_target=self.symlink_target,
                        mtime_ns=self.mtime_ns)


class SimExtFs(FileSystem):
    """The simulated ext file system."""

    fstype = "simext"
    baseline_negative_dentries = True

    def __init__(self, costs: CostModel, device: Optional[BlockDevice] = None,
                 pagecache: Optional[PageCache] = None):
        self.costs = costs
        self.device = device or BlockDevice(costs)
        self.pagecache = pagecache or PageCache(costs, self.device)
        first_data = INODE_TABLE_FIRST_BLOCK + INODE_TABLE_BLOCKS
        self._allocator = BlockAllocator(self.device.size_blocks, first_data)
        self._inodes: Dict[int, _Inode] = {}
        self._next_ino = 1
        # Freed inode numbers, reused lowest-first like ext's inode
        # bitmap.  Without reuse every delete/recreate cycle would march
        # the inode table (and the allocation hints derived from it)
        # monotonically across the disk, which no real FS does.
        self._free_inos: List[int] = []
        # Open-handle counts per inode (VFS iget/iput): a zero-nlink
        # inode is reclaimed on the *final* iput, giving Unix
        # unlink-while-open semantics.
        self._nopen: Dict[int, int] = {}
        root = self._alloc_inode(base.S_IFDIR | 0o755, uid=0, gid=0)
        assert root.ino == self.root_ino

    # -- internal helpers -----------------------------------------------------

    def _alloc_inode(self, mode: int, uid: int, gid: int) -> _Inode:
        if self._free_inos:
            ino = heappop(self._free_inos)
        else:
            ino = self._next_ino
            self._next_ino += 1
        inode = _Inode(ino, mode, uid, gid)
        inode.mtime_ns = self.costs.now_ns
        self._inodes[ino] = inode
        self._touch_inode_block(ino, for_write=True)
        return inode

    def _inode_block(self, ino: int) -> int:
        return INODE_TABLE_FIRST_BLOCK + (ino - 1) // INODES_PER_BLOCK

    def _touch_inode_block(self, ino: int, for_write: bool = False) -> None:
        self.pagecache.access(self._inode_block(ino), for_write=for_write)

    def _get(self, ino: int) -> _Inode:
        try:
            return self._inodes[ino]
        except KeyError:
            raise errors.ENOENT(message=f"stale inode {ino}") from None

    def _get_dir(self, ino: int) -> _Inode:
        inode = self._get(ino)
        if not inode.is_dir:
            raise errors.ENOTDIR(message=f"inode {ino} is not a directory")
        return inode

    def _dir_capacity(self, directory: _Inode) -> int:
        return len(directory.entry_blocks) * ENTRIES_PER_BLOCK

    def _ensure_entry_room(self, directory: _Inode) -> None:
        if len(directory.entries) < self._dir_capacity(directory):
            return
        near = (directory.entry_blocks[-1] if directory.entry_blocks
                else self._inode_block(directory.ino) + INODE_TABLE_BLOCKS)
        block = self._allocator.allocate(near=near)
        directory.entry_blocks.append(block)
        self.pagecache.access(block, for_write=True)

    def _search_blocks(self, directory: _Inode, name: str) -> None:
        """Charge the block accesses a name search in ``directory`` costs."""
        nblocks = max(1, len(directory.entry_blocks))
        if nblocks <= HTREE_THRESHOLD_BLOCKS:
            # Linear scan: on average half the blocks for hits, all for
            # misses; charge the worst case for determinism.
            for block in directory.entry_blocks or [self._inode_block(directory.ino)]:
                self.pagecache.access(block)
                self.costs.charge("fs_dirblock_scan")
        else:
            # htree: index block + one leaf block.
            self.pagecache.access(directory.entry_blocks[0])
            leaf = directory.entry_blocks[1 + (hash(name) % (nblocks - 1))]
            self.pagecache.access(leaf)
            self.costs.charge("fs_dirblock_scan", times=2)

    # -- reads -------------------------------------------------------------

    def getattr(self, ino: int) -> NodeInfo:
        inode = self._get(ino)
        self._touch_inode_block(ino)
        return inode.info()

    def peek(self, ino: int) -> NodeInfo:
        return self._get(ino).info()

    def lookup(self, dir_ino: int, name: str) -> Optional[NodeInfo]:
        self.costs.charge("fs_lookup_base")
        directory = self._get_dir(dir_ino)
        self._touch_inode_block(dir_ino)
        self._search_blocks(directory, name)
        found = directory.entries.get(name)
        if found is None:
            return None
        child_ino, _dtype = found
        self._touch_inode_block(child_ino)
        return self._get(child_ino).info()

    def readdir(self, dir_ino: int) -> Iterator[Tuple[str, int, str]]:
        directory = self._get_dir(dir_ino)
        self._touch_inode_block(dir_ino)
        block_iter = iter(directory.entry_blocks)
        emitted_in_block = ENTRIES_PER_BLOCK
        for name, (ino, dtype) in list(directory.entries.items()):
            if emitted_in_block >= ENTRIES_PER_BLOCK:
                block = next(block_iter, None)
                if block is not None:
                    self.pagecache.access(block)
                emitted_in_block = 0
            self.costs.charge("fs_readdir_entry")
            emitted_in_block += 1
            yield name, ino, dtype

    def read(self, ino: int, offset: int, length: int) -> bytes:
        inode = self._get(ino)
        self._touch_inode_block(ino)
        data = inode.data[offset:offset + length]
        first = offset // 4096
        last = max(first, (offset + max(len(data), 1) - 1) // 4096)
        for idx in range(first, last + 1):
            if idx < len(inode.data_blocks):
                self.pagecache.access(inode.data_blocks[idx])
        self.costs.charge("read_write_base", nbytes=len(data))
        return data

    # -- mutations -----------------------------------------------------------

    def _add_entry(self, dir_ino: int, name: str, child: _Inode,
                   dtype: str) -> None:
        directory = self._get_dir(dir_ino)
        if name in directory.entries:
            raise errors.EEXIST(message=f"{name!r} exists in inode {dir_ino}")
        self._ensure_entry_room(directory)
        directory.entries[name] = (child.ino, dtype)
        directory.size = len(directory.entries) * 32
        directory.mtime_ns = self.costs.now_ns
        self._touch_inode_block(dir_ino, for_write=True)
        if directory.entry_blocks:
            self.pagecache.access(directory.entry_blocks[-1], for_write=True)

    def create(self, dir_ino: int, name: str, mode: int, uid: int,
               gid: int) -> NodeInfo:
        self.costs.charge("fs_create")
        self._search_blocks(self._get_dir(dir_ino), name)
        inode = self._alloc_inode((mode & base.MODE_BITS) | base.S_IFREG,
                                  uid, gid)
        self._add_entry(dir_ino, name, inode, base.DT_REG)
        return inode.info()

    def mkdir(self, dir_ino: int, name: str, mode: int, uid: int,
              gid: int) -> NodeInfo:
        self.costs.charge("fs_create")
        self._search_blocks(self._get_dir(dir_ino), name)
        inode = self._alloc_inode((mode & base.MODE_BITS) | base.S_IFDIR,
                                  uid, gid)
        self._add_entry(dir_ino, name, inode, base.DT_DIR)
        self._get(dir_ino).nlink += 1
        return inode.info()

    def symlink(self, dir_ino: int, name: str, target: str, uid: int,
                gid: int) -> NodeInfo:
        self.costs.charge("fs_create")
        inode = self._alloc_inode(base.S_IFLNK | 0o777, uid, gid)
        inode.symlink_target = target
        inode.size = len(target)
        self._add_entry(dir_ino, name, inode, base.DT_LNK)
        return inode.info()

    def link(self, dir_ino: int, name: str, target_ino: int) -> NodeInfo:
        self.costs.charge("fs_create")
        inode = self._get(target_ino)
        if inode.is_dir:
            raise errors.EPERM(message="hard link to directory")
        self._add_entry(dir_ino, name, inode, base.DT_REG)
        inode.nlink += 1
        self._touch_inode_block(target_ino, for_write=True)
        return inode.info()

    def _remove_entry(self, dir_ino: int, name: str) -> _Inode:
        directory = self._get_dir(dir_ino)
        self._search_blocks(directory, name)
        found = directory.entries.pop(name, None)
        if found is None:
            raise errors.ENOENT(message=f"{name!r} not in inode {dir_ino}")
        directory.size = len(directory.entries) * 32
        directory.mtime_ns = self.costs.now_ns
        self._touch_inode_block(dir_ino, for_write=True)
        return self._get(found[0])

    def unlink(self, dir_ino: int, name: str) -> None:
        self.costs.charge("fs_unlink")
        directory = self._get_dir(dir_ino)
        found = directory.entries.get(name)
        if found is None:
            raise errors.ENOENT(message=f"{name!r} not in inode {dir_ino}")
        if self._get(found[0]).is_dir:
            raise errors.EISDIR(message=f"unlink of directory {name!r}")
        inode = self._remove_entry(dir_ino, name)
        inode.nlink -= 1
        self._touch_inode_block(inode.ino, for_write=True)
        # A zero-nlink inode with open handles becomes an orphan (Unix
        # unlink-while-open semantics); the final iput reclaims it.
        if inode.nlink == 0 and not self._nopen.get(inode.ino):
            self._reclaim(inode)

    def rmdir(self, dir_ino: int, name: str) -> None:
        self.costs.charge("fs_unlink")
        directory = self._get_dir(dir_ino)
        found = directory.entries.get(name)
        if found is None:
            raise errors.ENOENT(message=f"{name!r} not in inode {dir_ino}")
        child = self._get(found[0])
        if not child.is_dir:
            raise errors.ENOTDIR(message=f"rmdir of non-directory {name!r}")
        if child.entries:
            raise errors.ENOTEMPTY(message=f"directory {name!r} not empty")
        self._remove_entry(dir_ino, name)
        for block in child.entry_blocks:
            self._allocator.free(block)
        child.entry_blocks = []
        child.nlink = 0
        directory.nlink -= 1
        if not self._nopen.get(child.ino):
            self._reclaim(child)

    def rename(self, old_dir: int, old_name: str, new_dir: int,
               new_name: str) -> None:
        self.costs.charge("fs_rename")
        src_dir = self._get_dir(old_dir)
        found = src_dir.entries.get(old_name)
        if found is None:
            raise errors.ENOENT(message=f"{old_name!r} not in inode {old_dir}")
        moved_ino, dtype = found
        dst_dir = self._get_dir(new_dir)
        existing = dst_dir.entries.get(new_name)
        if existing is not None:
            target = self._get(existing[0])
            moved = self._get(moved_ino)
            if target.is_dir:
                if not moved.is_dir:
                    raise errors.EISDIR(message=f"{new_name!r} is a directory")
                if target.entries:
                    raise errors.ENOTEMPTY(message=f"{new_name!r} not empty")
                self.rmdir(new_dir, new_name)
            else:
                if moved.is_dir:
                    raise errors.ENOTDIR(message=f"{new_name!r} not a directory")
                self.unlink(new_dir, new_name)
        self._remove_entry(old_dir, old_name)
        moved = self._get(moved_ino)
        destination = self._get_dir(new_dir)
        self._ensure_entry_room(destination)
        destination.entries[new_name] = (moved_ino, dtype)
        destination.size = len(destination.entries) * 32
        destination.mtime_ns = self.costs.now_ns
        self._touch_inode_block(new_dir, for_write=True)
        if moved.is_dir and old_dir != new_dir:
            self._get_dir(old_dir).nlink -= 1
            self._get_dir(new_dir).nlink += 1

    def setattr(self, ino: int, mode: Optional[int] = None,
                uid: Optional[int] = None, gid: Optional[int] = None,
                size: Optional[int] = None,
                mtime_ns: Optional[int] = None) -> NodeInfo:
        self.costs.charge("fs_setattr")
        inode = self._get(ino)
        if mode is not None:
            inode.mode = (inode.mode & base.S_IFMT) | (mode & base.MODE_BITS)
        if uid is not None:
            inode.uid = uid
        if gid is not None:
            inode.gid = gid
        if size is not None and not inode.is_dir:
            inode.data = inode.data[:size].ljust(size, b"\0")
            inode.size = size
            inode.mtime_ns = self.costs.now_ns
        if mtime_ns is not None:
            inode.mtime_ns = mtime_ns
        self._touch_inode_block(ino, for_write=True)
        return inode.info()

    def write(self, ino: int, offset: int, data: bytes) -> int:
        inode = self._get(ino)
        if inode.is_dir:
            raise errors.EISDIR(message="write to directory")
        buf = bytearray(inode.data.ljust(offset + len(data), b"\0"))
        buf[offset:offset + len(data)] = data
        inode.data = bytes(buf)
        inode.size = len(inode.data)
        needed_blocks = (inode.size + 4095) // 4096
        while len(inode.data_blocks) < needed_blocks:
            near = (inode.data_blocks[-1] if inode.data_blocks
                    else self._inode_block(ino) + INODE_TABLE_BLOCKS)
            inode.data_blocks.append(self._allocator.allocate(near=near))
        first = offset // 4096
        last = max(first, (offset + max(len(data), 1) - 1) // 4096)
        for idx in range(first, min(last + 1, len(inode.data_blocks))):
            self.pagecache.access(inode.data_blocks[idx], for_write=True)
        inode.mtime_ns = self.costs.now_ns
        self.costs.charge("read_write_base", nbytes=len(data))
        self._touch_inode_block(ino, for_write=True)
        return len(data)

    def statfs(self) -> base.FsUsage:
        self.costs.charge("fs_lookup_base")
        return base.FsUsage(fstype=self.fstype,
                            total_blocks=self.device.size_blocks,
                            used_blocks=self._allocator.used_count,
                            inode_count=len(self._inodes))

    # -- extended attributes -----------------------------------------------------

    def getxattr(self, ino: int, name: str) -> bytes:
        self.costs.charge("fs_xattr")
        inode = self._get(ino)
        self._touch_inode_block(ino)
        try:
            return inode.xattrs[name]
        except KeyError:
            raise errors.ENOENT(message=f"no xattr {name!r}") from None

    def setxattr(self, ino: int, name: str, value: bytes) -> None:
        self.costs.charge("fs_xattr")
        self._get(ino).xattrs[name] = bytes(value)
        self._touch_inode_block(ino, for_write=True)

    def listxattr(self, ino: int) -> list:
        self.costs.charge("fs_xattr")
        self._touch_inode_block(ino)
        return sorted(self._get(ino).xattrs)

    def removexattr(self, ino: int, name: str) -> None:
        self.costs.charge("fs_xattr")
        inode = self._get(ino)
        if name not in inode.xattrs:
            raise errors.ENOENT(message=f"no xattr {name!r}")
        del inode.xattrs[name]
        self._touch_inode_block(ino, for_write=True)

    # -- inode lifetime --------------------------------------------------------

    def iget(self, ino: int) -> None:
        self._nopen[ino] = self._nopen.get(ino, 0) + 1

    def iput(self, ino: int) -> None:
        left = self._nopen.get(ino, 0) - 1
        if left > 0:
            self._nopen[ino] = left
            return
        self._nopen.pop(ino, None)
        inode = self._inodes.get(ino)
        if inode is not None and inode.nlink == 0:
            self._reclaim(inode)

    def _reclaim(self, inode: _Inode) -> None:
        """Final release of a zero-nlink inode: return its blocks and
        number to the free pools (no charge — bitmap updates ride the
        already-charged mutation that dropped the last link)."""
        del self._inodes[inode.ino]
        for block in inode.data_blocks:
            self._allocator.free(block)
        inode.data_blocks = []
        for block in inode.entry_blocks:
            self._allocator.free(block)
        inode.entry_blocks = []
        heappush(self._free_inos, inode.ino)
        if self.on_ino_reclaim is not None:
            self.on_ino_reclaim(inode.ino)

    # -- cache management ------------------------------------------------------

    def drop_caches(self) -> None:
        self.pagecache.drop_caches()
