"""DLFS-like file system: full-path hashing *on disk* (§7 related work).

The Direct Lookup File System [Lensing et al., SYSTOR 2013] organizes the
entire disk as a hash table keyed by path, so any lookup is one I/O — but
"organizing a disk as a hash table introduces some challenges, such as
converting a directory rename into a deep recursive copy of data and
metadata."  The paper's §7 insight is that hashing full paths *in memory*
(the DLHT) keeps the lookup win without that usability cliff.

This client-side model stores every object keyed by its full path and
charges per-object re-keying I/O on directory renames, so the rename-cost
comparison experiment (exp_dlfs) can quantify the §7 argument.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro import errors
from repro.fs import base
from repro.fs.base import FileSystem, NodeInfo
from repro.sim.costs import CostModel

#: Re-keying one on-disk object during a rename: read + write at new key.
REKEY_NS = 24_000.0
#: One hashed-key I/O (the design's selling point: single-I/O lookup).
KEYED_IO_NS = 9_000.0


class _Obj:
    __slots__ = ("ino", "mode", "uid", "gid", "nlink", "size",
                 "symlink_target", "data")

    def __init__(self, ino: int, mode: int, uid: int, gid: int):
        self.ino = ino
        self.mode = mode
        self.uid = uid
        self.gid = gid
        self.nlink = 2 if (mode & base.S_IFMT) == base.S_IFDIR else 1
        self.size = 0
        self.symlink_target: Optional[str] = None
        self.data = b""

    @property
    def is_dir(self) -> bool:
        return (self.mode & base.S_IFMT) == base.S_IFDIR

    def info(self) -> NodeInfo:
        return NodeInfo(self.ino, self.mode, self.uid, self.gid,
                        self.nlink, self.size, self.symlink_target)


class DlfsLikeFs(FileSystem):
    """Path-keyed storage: O(1) lookup, O(subtree) rename."""

    fstype = "dlfs-like"
    baseline_negative_dentries = True

    def __init__(self, costs: CostModel):
        self.costs = costs
        # The "disk": full path -> object.  "" is the root.
        self._by_path: Dict[str, _Obj] = {}
        self._paths_by_ino: Dict[int, str] = {}
        self._next_ino = 1
        root = _Obj(self._alloc_ino(), base.S_IFDIR | 0o755, 0, 0)
        self._by_path[""] = root
        self._paths_by_ino[root.ino] = ""
        self.rekey_count = 0

    def _alloc_ino(self) -> int:
        ino = self._next_ino
        self._next_ino += 1
        return ino

    def _path_of(self, ino: int) -> str:
        try:
            return self._paths_by_ino[ino]
        except KeyError:
            raise errors.ENOENT(message=f"stale inode {ino}") from None

    def _get(self, ino: int) -> _Obj:
        return self._by_path[self._path_of(ino)]

    def _child_key(self, dir_ino: int, name: str) -> str:
        parent = self._path_of(dir_ino)
        if not self._get(dir_ino).is_dir:
            raise errors.ENOTDIR(message=f"inode {dir_ino}")
        return f"{parent}/{name}"

    def _keyed_io(self) -> None:
        self.costs.charge_ns("dlfs_io", KEYED_IO_NS)

    # -- reads -------------------------------------------------------------

    def getattr(self, ino: int) -> NodeInfo:
        return self._get(ino).info()

    def peek(self, ino: int) -> NodeInfo:
        return self._get(ino).info()

    def lookup(self, dir_ino: int, name: str) -> Optional[NodeInfo]:
        self.costs.charge("fs_lookup_base")
        self._keyed_io()  # the single hashed I/O
        obj = self._by_path.get(self._child_key(dir_ino, name))
        return obj.info() if obj is not None else None

    def readdir(self, dir_ino: int) -> Iterator[Tuple[str, int, str]]:
        prefix = self._path_of(dir_ino) + "/"
        for path, obj in list(self._by_path.items()):
            if path.startswith(prefix) and "/" not in path[len(prefix):] \
                    and path != "":
                self.costs.charge("fs_readdir_entry")
                yield (path[len(prefix):], obj.ino,
                       base.mode_filetype(obj.mode))

    def read(self, ino: int, offset: int, length: int) -> bytes:
        self._keyed_io()
        data = self._get(ino).data[offset:offset + length]
        self.costs.charge("read_write_base", nbytes=len(data))
        return data

    # -- mutations -----------------------------------------------------------

    def _insert(self, dir_ino: int, name: str, obj: _Obj) -> NodeInfo:
        key = self._child_key(dir_ino, name)
        if key in self._by_path:
            raise errors.EEXIST(message=key)
        self._keyed_io()
        self._by_path[key] = obj
        self._paths_by_ino[obj.ino] = key
        return obj.info()

    def create(self, dir_ino, name, mode, uid, gid) -> NodeInfo:
        self.costs.charge("fs_create")
        obj = _Obj(self._alloc_ino(),
                   (mode & base.MODE_BITS) | base.S_IFREG, uid, gid)
        return self._insert(dir_ino, name, obj)

    def mkdir(self, dir_ino, name, mode, uid, gid) -> NodeInfo:
        self.costs.charge("fs_create")
        obj = _Obj(self._alloc_ino(),
                   (mode & base.MODE_BITS) | base.S_IFDIR, uid, gid)
        info = self._insert(dir_ino, name, obj)
        self._get(dir_ino).nlink += 1
        return info

    def symlink(self, dir_ino, name, target, uid, gid) -> NodeInfo:
        self.costs.charge("fs_create")
        obj = _Obj(self._alloc_ino(), base.S_IFLNK | 0o777, uid, gid)
        obj.symlink_target = target
        obj.size = len(target)
        return self._insert(dir_ino, name, obj)

    def link(self, dir_ino, name, target_ino) -> NodeInfo:
        # Hard links are fundamentally awkward in a path-keyed store;
        # DLFS-style designs typically do not support them.
        raise errors.ENOTSUP(message="path-keyed store: no hard links")

    def unlink(self, dir_ino, name) -> None:
        self.costs.charge("fs_unlink")
        key = self._child_key(dir_ino, name)
        obj = self._by_path.get(key)
        if obj is None:
            raise errors.ENOENT(message=key)
        if obj.is_dir:
            raise errors.EISDIR(message=key)
        self._keyed_io()
        del self._by_path[key]
        self._paths_by_ino.pop(obj.ino, None)

    def rmdir(self, dir_ino, name) -> None:
        self.costs.charge("fs_unlink")
        key = self._child_key(dir_ino, name)
        obj = self._by_path.get(key)
        if obj is None:
            raise errors.ENOENT(message=key)
        if not obj.is_dir:
            raise errors.ENOTDIR(message=key)
        if any(path.startswith(key + "/") for path in self._by_path):
            raise errors.ENOTEMPTY(message=key)
        self._keyed_io()
        del self._by_path[key]
        self._paths_by_ino.pop(obj.ino, None)
        self._get(dir_ino).nlink -= 1

    def rename(self, old_dir, old_name, new_dir, new_name) -> None:
        """The §7 cliff: every descendant object is re-keyed on disk."""
        self.costs.charge("fs_rename")
        old_key = self._child_key(old_dir, old_name)
        obj = self._by_path.get(old_key)
        if obj is None:
            raise errors.ENOENT(message=old_key)
        new_key = self._child_key(new_dir, new_name)
        existing = self._by_path.get(new_key)
        if existing is not None:
            if existing.is_dir:
                if not obj.is_dir:
                    raise errors.EISDIR(message=new_key)
                if any(p.startswith(new_key + "/") for p in self._by_path):
                    raise errors.ENOTEMPTY(message=new_key)
                self.rmdir(new_dir, new_name)
            else:
                if obj.is_dir:
                    raise errors.ENOTDIR(message=new_key)
                self.unlink(new_dir, new_name)
        moves = [(old_key, new_key)]
        prefix = old_key + "/"
        for path in list(self._by_path):
            if path.startswith(prefix):
                moves.append((path, new_key + path[len(old_key):]))
        for src, dst in moves:
            self.costs.charge_ns("dlfs_rekey", REKEY_NS)
            self.rekey_count += 1
            moved = self._by_path.pop(src)
            self._by_path[dst] = moved
            self._paths_by_ino[moved.ino] = dst
        if obj.is_dir and old_dir != new_dir:
            self._get(old_dir).nlink -= 1
            self._get(new_dir).nlink += 1

    def setattr(self, ino, mode=None, uid=None, gid=None,
                size=None, mtime_ns=None) -> NodeInfo:
        self.costs.charge("fs_setattr")
        self._keyed_io()
        obj = self._get(ino)
        if mode is not None:
            obj.mode = (obj.mode & base.S_IFMT) | (mode & base.MODE_BITS)
        if uid is not None:
            obj.uid = uid
        if gid is not None:
            obj.gid = gid
        if size is not None and not obj.is_dir:
            obj.data = obj.data[:size].ljust(size, b"\0")
            obj.size = size
        return obj.info()

    def write(self, ino, offset, data) -> int:
        self._keyed_io()
        obj = self._get(ino)
        if obj.is_dir:
            raise errors.EISDIR(message="write to directory")
        buf = bytearray(obj.data.ljust(offset + len(data), b"\0"))
        buf[offset:offset + len(data)] = data
        obj.data = bytes(buf)
        obj.size = len(obj.data)
        self.costs.charge("read_write_base", nbytes=len(data))
        return len(data)
