"""Low-level file system substrate.

The VFS (and both dcache designs) sit on top of a pluggable low-level file
system, mirroring the paper's setting where the dcache changes are
"encapsulated in the VFS — individual file systems do not have to change
their code" (§6.4).  Three file systems ship with the reproduction:

* :class:`~repro.fs.simext.SimExtFs` — an ext2-like on-disk FS over a
  simulated block device with a buffer cache; misses and ``readdir`` have
  realistic block-access costs.
* :class:`~repro.fs.tmpfs.TmpFs` — RAM-backed, CPU cost only.
* :class:`~repro.fs.pseudofs.PseudoFs` — a procfs-like synthetic FS, which
  (as in Linux) does not create negative dentries under the baseline
  kernel (§5.2).
"""

from repro.fs.disk import BlockDevice
from repro.fs.pagecache import PageCache
from repro.fs.simext import SimExtFs
from repro.fs.tmpfs import TmpFs
from repro.fs.pseudofs import PseudoFs
from repro.fs.base import FileSystem, NodeInfo, DT_REG, DT_DIR, DT_LNK

__all__ = [
    "BlockDevice",
    "PageCache",
    "SimExtFs",
    "TmpFs",
    "PseudoFs",
    "FileSystem",
    "NodeInfo",
    "DT_REG",
    "DT_DIR",
    "DT_LNK",
]
