"""Table 1 bench: application performance, warm cache."""

from repro.bench import exp_table1

from conftest import run_experiment


def test_table1_apps_warm(benchmark):
    report = run_experiment(benchmark, exp_table1.run)
    assert len(report.rows) == 9
