"""Ablation bench: per-feature contribution to each workload's gain."""

from repro.bench import exp_ablation

from conftest import run_experiment


def test_ablation_features(benchmark):
    run_experiment(benchmark, exp_ablation.run)
