"""§3.3 bench: 2-universal vs PRF signature schemes."""

from repro.bench import exp_sigscheme

from conftest import run_experiment


def test_signature_schemes(benchmark):
    run_experiment(benchmark, exp_sigscheme.run)
