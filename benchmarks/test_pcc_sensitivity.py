"""§6.1 ablation bench: PCC capacity sensitivity (updatedb)."""

from repro.bench import exp_pcc

from conftest import run_experiment


def test_pcc_sensitivity(benchmark):
    run_experiment(benchmark, exp_pcc.run)
