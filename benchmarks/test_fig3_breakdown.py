"""Figure 3 bench: lookup latency breakdown by phase."""

from repro.bench import exp_fig3

from conftest import run_experiment


def test_fig3_breakdown(benchmark):
    report = run_experiment(benchmark, exp_fig3.run)
    assert len(report.rows) == 8  # 4 paths x 2 kernels
