"""§4.3 bench: NFS-like vs AFS-like clients under both kernels."""

from repro.bench import exp_netfs

from conftest import run_experiment


def test_netfs_comparison(benchmark):
    run_experiment(benchmark, exp_netfs.run)
