"""§7 bench: in-memory vs on-disk full-path hashing (DLFS)."""

from repro.bench import exp_dlfs

from conftest import run_experiment


def test_dlfs_comparison(benchmark):
    run_experiment(benchmark, exp_dlfs.run)
