"""Figure 2 bench: long-path stat latency, baseline vs optimized."""

from repro.bench import exp_fig2

from conftest import run_experiment


def test_fig2_stat_history(benchmark):
    report = run_experiment(benchmark, exp_fig2.run)
    measured = [row for row in report.rows if row[2] == "measured"]
    assert len(measured) == 2
