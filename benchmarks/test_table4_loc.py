"""Table 4 bench: lines-of-code inventory (adoption cost)."""

from repro.bench import exp_table4

from conftest import run_experiment


def test_table4_loc(benchmark):
    report = run_experiment(benchmark, exp_table4.run)
    total = sum(row[2] for row in report.rows)
    assert total > 5000  # the library is a real system, not a stub
