"""Table 2 bench: application performance, cold cache."""

from repro.bench import exp_table2

from conftest import run_experiment


def test_table2_apps_cold(benchmark):
    run_experiment(benchmark, exp_table2.run)
