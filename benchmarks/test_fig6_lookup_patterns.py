"""Figure 6 bench: stat/open latency across path patterns."""

from repro.bench import exp_fig6

from conftest import run_experiment


def test_fig6_lookup_patterns(benchmark):
    report = run_experiment(benchmark, exp_fig6.run)
    assert len(report.rows) == 11  # all path patterns


def test_fig6_at_variants(benchmark):
    report = benchmark.pedantic(exp_fig6.run_at_variants,
                                iterations=1, rounds=1)
    assert report.all_passed
