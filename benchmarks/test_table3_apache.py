"""Table 3 bench: Apache directory-listing throughput."""

from repro.bench import exp_table3

from conftest import run_experiment


def test_table3_apache(benchmark):
    run_experiment(benchmark, exp_table3.run)
