"""§6.1 space-overhead bench: memory cost of the optimized design."""

from repro.bench import exp_space

from conftest import run_experiment


def test_space_overhead(benchmark):
    run_experiment(benchmark, exp_space.run)
