"""Figure 8 bench: latency vs thread count (analytic projection)."""

from repro.bench import exp_fig8

from conftest import run_experiment


def test_fig8_scalability(benchmark):
    report = run_experiment(benchmark, exp_fig8.run)
    assert len(report.rows) == 13  # 1..12 threads + writer row
