"""Raw simulator throughput: wall-clock cost of simulated syscalls.

Not a paper experiment — this measures the *reproduction's* own speed,
so regressions in the simulator implementation show up in CI.
"""

import pytest

from repro import O_CREAT, O_RDWR, make_kernel
from repro.workloads import lmbench


@pytest.fixture(scope="module", params=["baseline", "optimized"])
def warm_kernel(request):
    kernel = make_kernel(request.param)
    task = lmbench.prepare_lookup_tree(kernel)
    kernel.sys.stat(task, lmbench.LONG_PATH)
    return kernel, task


def test_warm_stat_wallclock(benchmark, warm_kernel):
    kernel, task = warm_kernel
    benchmark(kernel.sys.stat, task, lmbench.LONG_PATH)


def test_create_unlink_wallclock(benchmark):
    kernel = make_kernel("optimized")
    task = kernel.spawn_task(uid=0, gid=0)
    kernel.sys.mkdir(task, "/w")
    counter = [0]

    def create_and_unlink():
        path = f"/w/f{counter[0]}"
        counter[0] += 1
        fd = kernel.sys.open(task, path, O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        kernel.sys.unlink(task, path)

    benchmark(create_and_unlink)


def test_readdir_wallclock(benchmark):
    from repro.workloads.tree import build_flat_dir
    kernel = make_kernel("optimized")
    task = kernel.spawn_task(uid=0, gid=0)
    build_flat_dir(kernel, task, "/big", 500)
    kernel.sys.listdir(task, "/big")
    benchmark(kernel.sys.listdir, task, "/big")


def test_rename_invalidation_wallclock(benchmark):
    """Mutation side: rename a warm directory, then re-stat under it."""
    kernel = make_kernel("optimized")
    task = kernel.spawn_task(uid=0, gid=0)
    kernel.sys.mkdir(task, "/r")
    kernel.sys.mkdir(task, "/r/d0")
    kernel.sys.mkdir(task, "/r/d0/sub")
    fd = kernel.sys.open(task, "/r/d0/sub/f", O_CREAT | O_RDWR)
    kernel.sys.close(task, fd)
    kernel.sys.stat(task, "/r/d0/sub/f")
    flip = [0]

    def rename_and_stat():
        src, dst = ("/r/d0", "/r/d1") if flip[0] == 0 else ("/r/d1", "/r/d0")
        flip[0] ^= 1
        kernel.sys.rename(task, src, dst)
        kernel.sys.stat(task, dst + "/sub/f")

    benchmark(rename_and_stat)
