"""Raw simulator throughput: wall-clock cost of simulated syscalls.

Not a paper experiment — this measures the *reproduction's* own speed,
so regressions in the simulator implementation show up in CI.  Every
benchmark runs on all three kernel profiles (``baseline``, eager
``optimized``, epoch-based ``optimized-lazy``) so each committed key in
``BENCH_simspeed.json`` has a pytest result behind it — ``repro-speed
--check`` fails loudly on any baseline key with no mapped result.

The replay-loop benchmarks build their kernels with
``lazy_sweep_quantize=True``, matching ``repro.bench.speed`` — the
quantized mode is what keeps the ``optimized-lazy`` replay cells on the
charge-plan fast path (see ``docs/coherence.md``), and the committed
baseline numbers are generated the same way.
"""

import pytest

from repro import O_CREAT, O_RDWR, make_kernel
from repro.workloads import lmbench


@pytest.fixture(scope="module",
                params=["baseline", "optimized", "optimized-lazy"])
def warm_kernel(request):
    kernel = make_kernel(request.param)
    task = lmbench.prepare_lookup_tree(kernel)
    kernel.sys.stat(task, lmbench.LONG_PATH)
    return kernel, task


def test_warm_stat_wallclock(benchmark, warm_kernel):
    kernel, task = warm_kernel
    benchmark(kernel.sys.stat, task, lmbench.LONG_PATH)


@pytest.mark.parametrize("profile",
                         ["baseline", "optimized", "optimized-lazy"])
def test_create_unlink_wallclock(benchmark, profile):
    kernel = make_kernel(profile)
    task = kernel.spawn_task(uid=0, gid=0)
    kernel.sys.mkdir(task, "/w")
    counter = [0]

    def create_and_unlink():
        path = f"/w/f{counter[0]}"
        counter[0] += 1
        fd = kernel.sys.open(task, path, O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        kernel.sys.unlink(task, path)

    benchmark(create_and_unlink)


@pytest.mark.parametrize("profile",
                         ["baseline", "optimized", "optimized-lazy"])
def test_readdir_wallclock(benchmark, profile):
    from repro.workloads.tree import build_flat_dir
    kernel = make_kernel(profile)
    task = kernel.spawn_task(uid=0, gid=0)
    build_flat_dir(kernel, task, "/big", 500)
    kernel.sys.listdir(task, "/big")
    benchmark(kernel.sys.listdir, task, "/big")


@pytest.mark.parametrize("profile",
                         ["baseline", "optimized", "optimized-lazy"])
def test_rename_invalidation_wallclock(benchmark, profile):
    """Mutation side: rename a warm directory, then re-stat under it."""
    kernel = make_kernel(profile)
    task = kernel.spawn_task(uid=0, gid=0)
    kernel.sys.mkdir(task, "/r")
    kernel.sys.mkdir(task, "/r/d0")
    kernel.sys.mkdir(task, "/r/d0/sub")
    fd = kernel.sys.open(task, "/r/d0/sub/f", O_CREAT | O_RDWR)
    kernel.sys.close(task, fd)
    kernel.sys.stat(task, "/r/d0/sub/f")
    flip = [0]

    def rename_and_stat():
        src, dst = ("/r/d0", "/r/d1") if flip[0] == 0 else ("/r/d1", "/r/d0")
        flip[0] ^= 1
        kernel.sys.rename(task, src, dst)
        kernel.sys.stat(task, dst + "/sub/f")

    benchmark(rename_and_stat)


@pytest.mark.parametrize("profile",
                         ["baseline", "optimized", "optimized-lazy"])
def test_rename_churn_wallclock(benchmark, profile):
    """Mutation-heavy churn: rename a warm 50-file dir, re-stat a few."""
    kernel = make_kernel(profile)
    task = kernel.spawn_task(uid=0, gid=0)
    kernel.sys.mkdir(task, "/c")
    kernel.sys.mkdir(task, "/c/d0")
    for i in range(50):
        fd = kernel.sys.open(task, f"/c/d0/f{i}", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        kernel.sys.stat(task, f"/c/d0/f{i}")
    flip = [0]

    def churn():
        src, dst = ("/c/d0", "/c/d1") if flip[0] == 0 else ("/c/d1", "/c/d0")
        flip[0] ^= 1
        kernel.sys.rename(task, src, dst)
        for i in range(0, 50, 10):
            kernel.sys.stat(task, f"{dst}/f{i}")

    benchmark(churn)


@pytest.mark.parametrize("profile",
                         ["baseline", "optimized", "optimized-lazy"])
def test_stat_churn_wallclock(benchmark, profile):
    """Interleaved stat/rename over overlapping hot paths.

    Exercises the resolution memo's invalidation cost: eight warm stats,
    a sibling-directory rename (scoped memo kills via the reverse
    dependency indexes — only entries that observed the moved dentry
    die), then re-stats of half the files, which replay from the
    surviving memo entries instead of re-recording.
    """
    kernel = make_kernel(profile)
    task = kernel.spawn_task(uid=0, gid=0)
    kernel.sys.mkdir(task, "/s")
    kernel.sys.mkdir(task, "/s/hot")
    for i in range(8):
        fd = kernel.sys.open(task, f"/s/hot/f{i}", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        kernel.sys.stat(task, f"/s/hot/f{i}")
    kernel.sys.mkdir(task, "/s/flip0")
    paths = [f"/s/hot/f{i}" for i in range(8)]
    flip = [0]

    def churn():
        for path in paths:
            kernel.sys.stat(task, path)
        src, dst = ("/s/flip0", "/s/flip1") if flip[0] == 0 \
            else ("/s/flip1", "/s/flip0")
        flip[0] ^= 1
        kernel.sys.rename(task, src, dst)
        for path in paths[::2]:
            kernel.sys.stat(task, path)

    benchmark(churn)


@pytest.mark.parametrize("profile",
                         ["baseline", "optimized", "optimized-lazy"])
def test_snapshot_restore_wallclock(benchmark, profile):
    """Warm-kernel snapshot restore — the engine's per-rep primitive.

    With the struct-of-arrays dcache core, most per-dentry scalars live
    in arena columns that restore as one C-level array copy each; this
    cell gates that bulk-copy path directly.
    """
    from repro.sim.snapshot import KernelSnapshot
    kernel = make_kernel(profile)
    task = lmbench.prepare_lookup_tree(kernel)
    kernel.sys.stat(task, lmbench.LONG_PATH)
    snap = KernelSnapshot(kernel, task)
    benchmark(snap.restore)


@pytest.mark.parametrize("profile",
                         ["baseline", "optimized", "optimized-lazy"])
def test_trace_replay_wallclock(benchmark, profile):
    """Compiled replay of the self-undoing fd-heavy loop trace.

    Compilation happens once, outside the timed loop; each benchmark
    round is one full ``replay_compiled`` pass (~2.2k events) through
    the batched dispatch table.  The trace restores its initial FS
    state and closes every fd, so rounds are deterministic.
    """
    from repro.workloads.compile import build_loop_trace, compile_trace
    from repro.workloads.traces import replay_compiled
    kernel = make_kernel(profile, lazy_sweep_quantize=True)
    task = kernel.spawn_task(uid=0, gid=0)
    program = compile_trace(build_loop_trace(profile=profile))
    replay_compiled(kernel, task, program)  # warm caches + fd numbering
    benchmark(replay_compiled, kernel, task, program)


@pytest.mark.parametrize("profile",
                         ["baseline", "optimized", "optimized-lazy"])
def test_multi_task_replay_wallclock(benchmark, profile):
    """Interleaved compiled replay of 120 per-task streams on one kernel.

    Each task owns a small self-undoing loop trace under its own
    subtree (own creds, cwd, fd table); a seeded round-robin scheduler
    interleaves the compiled streams unit by unit, so rounds are
    deterministic.  One benchmark round drains all 120 streams.
    """
    from repro.workloads.compile import build_loop_trace, compile_trace
    from repro.workloads.traces import replay_interleaved
    kernel = make_kernel(profile, lazy_sweep_quantize=True)
    streams = []
    for i in range(120):
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, f"/home{i}")
        kernel.sys.chdir(task, f"/home{i}")
        trace = build_loop_trace(files=2, io_rounds=1, subdirs=1,
                                 profile=profile, root=f"/mt{i}")
        streams.append((task, compile_trace(trace)))
    replay_interleaved(kernel, streams, seed=0)  # warm caches + fds
    benchmark(replay_interleaved, kernel, streams, seed=0)


@pytest.mark.parametrize("profile",
                         ["baseline", "optimized", "optimized-lazy"])
def test_server_fleet_wallclock(benchmark, profile):
    """Interleaved drain of a six-tenant webserver/maildir fleet.

    The heavyweight multi-tenant cell: Zipf-skewed request volume over
    tenants with real content and a 10% mutating request mix, recorded
    per tenant and drained through ``replay_interleaved`` — the engine
    behind ``exp_tenant_crossover``.  Provisioning, recording, and
    trace compilation happen outside the timed loop; one benchmark
    round is one full fleet drain.
    """
    from repro.workloads import server_fleet
    from repro.workloads.traces import replay_interleaved
    kernel = make_kernel(profile, lazy_sweep_quantize=True)
    fleet = server_fleet.build_fleet(kernel, 6, total_requests=48,
                                     mutation_rate=0.1, seed=3)
    streams = fleet.streams
    replay_interleaved(kernel, streams, seed=fleet.seed)  # warm
    benchmark(replay_interleaved, kernel, streams, seed=fleet.seed)
