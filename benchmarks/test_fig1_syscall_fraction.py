"""Figure 1 bench: fraction of app runtime in path-based syscalls."""

from repro.bench import exp_fig1

from conftest import run_experiment


def test_fig1_syscall_fraction(benchmark):
    report = run_experiment(benchmark, exp_fig1.run)
    assert len(report.rows) == 9  # the full utility roster
