"""Benchmark-suite helpers.

Each ``test_*`` benchmark runs one paper experiment (quick scale) through
pytest-benchmark — the wall time measures the simulator, the assertions
verify the paper's qualitative claims (the Report's shape checks).  Full
tables for EXPERIMENTS.md come from ``python -m repro.bench.report``.
"""

from __future__ import annotations


def run_experiment(benchmark, runner, quick=True):
    """Benchmark one experiment run and return its Report."""
    report = benchmark.pedantic(lambda: runner(quick=quick),
                                iterations=1, rounds=1)
    failures = [check for check in report.checks if not check.passed]
    assert not failures, "shape checks failed:\n" + "\n".join(
        f"  {c.claim}: {c.detail}" for c in failures)
    return report
