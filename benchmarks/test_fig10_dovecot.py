"""Figure 10 bench: Dovecot maildir throughput."""

from repro.bench import exp_fig10

from conftest import run_experiment


def test_fig10_dovecot(benchmark):
    run_experiment(benchmark, exp_fig10.run)
