"""Figure 9 bench: readdir and mkstemp latency vs directory size."""

from repro.bench import exp_fig9

from conftest import run_experiment


def test_fig9_readdir_mkstemp(benchmark):
    run_experiment(benchmark, exp_fig9.run)
