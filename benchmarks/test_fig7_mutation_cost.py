"""Figure 7 bench: chmod/rename latency vs cached subtree size."""

from repro.bench import exp_fig7

from conftest import run_experiment


def test_fig7_mutation_cost(benchmark):
    run_experiment(benchmark, exp_fig7.run)
