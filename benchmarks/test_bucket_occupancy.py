"""§6.5 bench: primary hash table bucket occupancy distribution."""

from repro.bench import exp_buckets

from conftest import run_experiment


def test_bucket_occupancy(benchmark):
    run_experiment(benchmark, exp_buckets.run)
