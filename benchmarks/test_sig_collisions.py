"""§3.3 bench: signature collision risk and PCC containment."""

from repro.bench import exp_collisions

from conftest import run_experiment


def test_collision_risk_model(benchmark):
    run_experiment(benchmark, exp_collisions.run)


def test_collision_containment(benchmark):
    report = benchmark.pedantic(exp_collisions.run_containment,
                                iterations=1, rounds=1)
    assert report.all_passed
