#!/usr/bin/env python3
"""Domain example: an rsync-style incremental backup tool.

A complete little application on the public API: it walks a source tree,
compares mtimes and sizes against a destination tree, and copies only
what changed — the classic metadata-bound workload the paper's
optimizations exist for.  The second (incremental, nothing-changed) run
is almost pure directory-cache traffic, and the optimized kernel's
advantage is much larger there than on the first (copy-bound) run.

Run:  python examples/backup_sync.py
"""

from repro import O_CREAT, O_RDONLY, O_RDWR, O_TRUNC, errors, make_kernel
from repro.workloads.tree import TreeSpec, populate


def sync_tree(kernel, task, src: str, dst: str) -> int:
    """Copy changed/new files from src to dst; returns files copied."""
    sys = kernel.sys
    if not sys.exists(task, dst):
        sys.mkdir(task, dst)
    copied = 0
    for name, _ino, dtype in sys.listdir(task, src):
        s_path = f"{src}/{name}"
        d_path = f"{dst}/{name}"
        if dtype == "dir":
            copied += sync_tree(kernel, task, s_path, d_path)
            continue
        if dtype != "reg":
            continue
        s_st = sys.stat(task, s_path)
        try:
            d_st = sys.stat(task, d_path)
            fresh = (d_st.size == s_st.size
                     and d_st.mtime_ns >= s_st.mtime_ns)
        except errors.ENOENT:
            fresh = False
        if fresh:
            continue
        in_fd = sys.open(task, s_path, O_RDONLY)
        out_fd = sys.open(task, d_path, O_CREAT | O_RDWR | O_TRUNC)
        sys.write(task, out_fd, sys.read(task, in_fd, s_st.size))
        sys.close(task, in_fd)
        sys.close(task, out_fd)
        copied += 1
    return copied


def run_backup(profile: str):
    """One full + one incremental sync; returns their virtual times."""
    kernel = make_kernel(profile)
    task = kernel.spawn_task(uid=0, gid=0)
    populate(kernel, task, "/data",
             TreeSpec(depth=2, dirs_per_level=4, files_per_dir=12,
                      file_bytes=64))
    start = kernel.now_ns
    first = sync_tree(kernel, task, "/data", "/backup")
    full_ns = kernel.now_ns - start
    # Touch a handful of files, then sync incrementally.
    sys = kernel.sys
    edited = [name for name, _ino, dtype in sys.listdir(task, "/data")
              if dtype == "reg"][:3]
    for name in edited:
        fd = sys.open(task, f"/data/{name}", O_RDWR)
        sys.write(task, fd, b"edited!")
        sys.close(task, fd)
    start = kernel.now_ns
    second = sync_tree(kernel, task, "/data", "/backup")
    incr_ns = kernel.now_ns - start
    return first, full_ns, second, incr_ns


def main() -> None:
    print("incremental backup over a 250-file tree\n")
    results = {}
    for profile in ("baseline", "optimized"):
        first, full_ns, second, incr_ns = run_backup(profile)
        results[profile] = (full_ns, incr_ns)
        print(f"{profile:10s}: full sync {first:3d} files in "
              f"{full_ns / 1e6:7.2f} ms; incremental {second} files in "
              f"{incr_ns / 1e6:7.2f} ms")
    full_gain = 100 * (1 - results["optimized"][0] / results["baseline"][0])
    incr_gain = 100 * (1 - results["optimized"][1] / results["baseline"][1])
    print(f"\ngain on the copy-bound full sync:       {full_gain:+5.1f}%")
    print(f"gain on the metadata-bound incremental: {incr_gain:+5.1f}%")
    print("(the incremental pass is where the directory cache rules)")


if __name__ == "__main__":
    main()
