#!/usr/bin/env python3
"""Domain example: confinement features riding on the directory cache.

The paper's compatibility argument (§4) is that the optimized dcache
keeps working under every kernel feature built on it.  This script
exercises the heavy ones together:

* an SELinux-like LSM whose decisions are memoized in the PCC,
* a chroot jail,
* a private mount namespace with its own direct lookup hash table,
* live relabeling that revokes memoized access.

Run:  python examples/sandboxed_service.py
"""

from repro import O_CREAT, O_RDWR, errors, make_kernel
from repro.fs.tmpfs import TmpFs
from repro.vfs.lsm import SELinuxLikeLsm


def main() -> None:
    policy = SELinuxLikeLsm()
    policy.allow("webapp_t", "file_t", "search")
    policy.allow("webapp_t", "file_t", "read")
    policy.allow("webapp_t", "content_t", "search")
    policy.allow("webapp_t", "content_t", "read")

    kernel = make_kernel("optimized", lsm=policy)
    sys = kernel.sys
    admin = kernel.spawn_task(uid=0, gid=0)

    # Lay out a service jail.
    for path in ("/srv", "/srv/web", "/srv/web/static", "/srv/web/secrets"):
        sys.mkdir(admin, path)
    fd = sys.open(admin, "/srv/web/static/index.html", O_CREAT | O_RDWR)
    sys.write(admin, fd, b"<h1>hello</h1>")
    sys.close(admin, fd)
    fd = sys.open(admin, "/srv/web/secrets/api.key", O_CREAT | O_RDWR)
    sys.write(admin, fd, b"hunter2")
    sys.close(admin, fd)
    sys.chmod(admin, "/srv/web/secrets", 0o755)  # DAC would allow...
    sys.relabel(admin, "/srv/web/secrets", "secret_t")  # ...LSM denies

    # The service: set up as root (unshare + mount + chroot), then drop
    # privileges into the confined domain — the service-manager pattern.
    service = kernel.spawn_task(uid=0, gid=0)
    sys.unshare_mountns(service)
    sys.mount_fs(service, TmpFs(kernel.costs), "/srv/web/static")
    fd = sys.open(service, "/srv/web/static/cache.bin", O_CREAT | O_RDWR)
    sys.close(service, fd)
    sys.chroot(service, "/srv/web")
    sys.chdir(service, "/")
    kernel.change_identity(service, uid=33, gid=33, security="webapp_t")

    print("service view:")
    print("  /static ->", [n for n, _i, _t
                           in sys.listdir(service, "/static")])
    try:
        sys.stat(service, "/secrets/api.key")
    except errors.EACCES:
        print("  /secrets/api.key -> EACCES (LSM veto, memoized safely)")

    # The admin outside the namespace does not see the service's tmpfs.
    try:
        sys.stat(admin, "/srv/web/static/cache.bin")
        print("  BUG: namespace leak!")
    except errors.ENOENT:
        print("  admin cannot see the service's private tmpfs (good)")

    # Live policy change: relabel the jail root; every memoized prefix
    # check below it — in the service's own namespace — must die.
    # (Relabeling the *covered* /srv/web/static would be a no-op for the
    # service: traversal into a mountpoint checks the mounted root's
    # permissions, exactly as in Linux.)
    sys.stat(service, "/static/cache.bin")  # warm the PCC in the jail
    sys.relabel(admin, "/srv/web", "blocked_t")
    try:
        sys.stat(service, "/static/cache.bin")
        print("  BUG: stale memoized access!")
    except errors.EACCES:
        print("  relabel revoked the service's cached prefix checks")

    print("\nfastpath statistics:",
          f"hits={kernel.stats.get('fastpath_hit')}",
          f"misses={kernel.stats.get('fastpath_miss')}",
          f"invalidated dentries={kernel.stats.get('inval_dentry')}")


if __name__ == "__main__":
    main()
