#!/usr/bin/env python3
"""Domain example: record a syscall trace once, replay it anywhere.

The paper motivates its design with syscall traces (§1: "between 10-20%
of all system calls in the iBench traces do a path lookup").  This script
records a small development-workflow trace, reports the same statistic,
serializes the trace to JSON lines, and replays it against both kernels
to compare virtual time.

Run:  python examples/trace_replay.py
"""

from repro import O_CREAT, O_DIRECTORY, O_RDONLY, O_RDWR, errors, make_kernel
from repro.workloads.compile import compile_trace
from repro.workloads.traces import Trace, TraceRecorder, replay, \
    replay_compiled


def record_workflow() -> Trace:
    """A developer's edit-build-check loop, recorded live."""
    kernel = make_kernel("baseline")
    task = kernel.spawn_task(uid=0, gid=0)
    rec = TraceRecorder(kernel, task)

    rec.mkdir("/proj")
    rec.mkdir("/proj/src")
    rec.mkdir("/proj/build")
    for name in ("main.c", "util.c", "util.h"):
        fd = rec.open(f"/proj/src/{name}", O_CREAT | O_RDWR)
        rec.write(fd, b"// code\n")
        rec.close(fd)
    # The build: stat sources, probe headers that don't exist, compile.
    for _iteration in range(3):
        for name in ("main.c", "util.c"):
            rec.stat(f"/proj/src/{name}")
            for missing in ("config.h", "generated.h"):
                try:
                    rec.stat(f"/proj/src/{missing}")
                except errors.ENOENT:
                    pass
            rec.compute(40_000)  # "compilation"
            fd = rec.open(f"/proj/build/{name}.o", O_CREAT | O_RDWR)
            rec.write(fd, b"obj")
            rec.close(fd)
        fd = rec.open("/proj/build", O_RDONLY | O_DIRECTORY)
        rec.getdents(fd, 100)
        rec.close(fd)
    return rec.trace


def main() -> None:
    trace = record_workflow()
    stats = trace.stats()
    print(f"recorded {stats.total_syscalls} syscalls "
          f"({len(trace.dumps().splitlines())} JSON lines)")
    print(f"path-lookup syscalls: {stats.path_lookup_syscalls} "
          f"({100 * stats.path_lookup_fraction:.0f}% — the paper's §1 "
          f"statistic)")
    top = sorted(stats.by_op.items(), key=lambda kv: -kv[1])[:5]
    print("top ops:", ", ".join(f"{op}×{n}" for op, n in top))

    # Serialize and restore, as a stored-trace workflow would.
    restored = Trace.loads(trace.dumps())

    # AOT-compile once; replay many times through batched dispatch.
    # Compiled replay is a wall-clock optimization only: it charges
    # bit-identical virtual costs to the interpreter.
    program = compile_trace(restored)
    print(f"\ncompiled to {len(program)} rows over "
          f"{len(program.op_table)} distinct ops "
          f"(compile took {program.compile_wall_s * 1e3:.1f} host ms)")

    print("replaying (compiled) on both kernels:")
    for profile in ("baseline", "optimized"):
        kernel = make_kernel(profile)
        task = kernel.spawn_task(uid=0, gid=0)
        start = kernel.now_ns
        replay_compiled(kernel, task, program)
        elapsed = kernel.now_ns - start
        print(f"  {profile:10s}: {elapsed / 1e6:7.3f} virtual ms "
              f"(fastpath hits: {kernel.stats.get('fastpath_hit')})")

    # The interpreter is the reference engine; virtual time matches.
    kernel = make_kernel("optimized")
    task = kernel.spawn_task(uid=0, gid=0)
    start = kernel.now_ns
    replay(kernel, task, restored)
    print(f"  interpreted (optimized): {(kernel.now_ns - start) / 1e6:7.3f} "
          f"virtual ms — identical to the compiled run")


if __name__ == "__main__":
    main()
