#!/usr/bin/env python3
"""Quickstart: a tour of the dcache-repro public API.

Builds an optimized kernel, performs everyday file system operations,
and shows the directory-cache machinery at work: fastpath hits, negative
dentries, directory completeness, and the virtual-time cost model.

Run:  python examples/quickstart.py
"""

from repro import O_CREAT, O_RDONLY, O_RDWR, errors, make_kernel


def main() -> None:
    # A kernel is a self-contained simulated OS instance: VFS, dcache,
    # a root file system, and a virtual clock.
    kernel = make_kernel("optimized")
    sys = kernel.sys

    # Tasks are processes: credentials + cwd + root + fd table.
    root = kernel.spawn_task(uid=0, gid=0)
    sys.mkdir(root, "/home")
    sys.mkdir(root, "/home/alice", mode=0o755)
    sys.chown(root, "/home/alice", uid=1000, gid=1000)

    alice = kernel.spawn_task(uid=1000, gid=1000)
    fd = sys.open(alice, "/home/alice/notes.txt", O_CREAT | O_RDWR)
    sys.write(alice, fd, b"remember the milk\n")
    sys.close(alice, fd)

    st = sys.stat(alice, "/home/alice/notes.txt")
    print(f"created notes.txt: {st.size} bytes, mode {oct(st.mode)}")

    # --- the fastpath in action -----------------------------------------
    # The first stat of a path walks component-at-a-time (slowpath) and
    # populates the direct lookup hash table + prefix check cache; later
    # stats complete in a constant number of hash table operations.
    kernel.stats.reset()
    start = kernel.now_ns
    sys.stat(alice, "/home/alice/notes.txt")
    print(f"warm stat took {kernel.now_ns - start:.0f} virtual ns "
          f"(fastpath hits: {kernel.stats.get('fastpath_hit')})")

    # --- negative dentries -----------------------------------------------
    # Nonexistence is cached too: repeated misses never touch the FS.
    for _ in range(2):
        try:
            sys.stat(alice, "/home/alice/nope.txt")
        except errors.ENOENT:
            pass
    print(f"repeated ENOENT served from cache "
          f"(negative hits: {kernel.stats.get('negative_hit')}, "
          f"fs lookups: {kernel.stats.get('fs_lookup')})")

    # --- symlinks ---------------------------------------------------------
    sys.symlink(root, "/home/alice/notes.txt", "/latest")
    print(f"via symlink: {sys.stat(alice, '/latest').size} bytes "
          f"(readlink: {sys.readlink(alice, '/latest')})")

    # --- directory completeness -------------------------------------------
    # After one full listing the kernel knows the directory's complete
    # contents; further listings never call the low-level FS.
    sys.listdir(alice, "/home/alice")
    kernel.stats.reset()
    listing = sys.listdir(alice, "/home/alice")
    print(f"cached listing of {len(listing)} entries "
          f"(served from dcache: {kernel.stats.get('readdir_cached')})")

    # --- permission coherence ------------------------------------------------
    # Revoking search permission upstream invalidates every memoized
    # prefix check below, atomically with the change.
    bob = kernel.spawn_task(uid=1001, gid=1001)
    print("bob reads alice's notes:",
          sys.read(bob, sys.open(bob, "/home/alice/notes.txt", O_RDONLY),
                   100))
    sys.chmod(root, "/home/alice", 0o700)
    try:
        sys.stat(bob, "/home/alice/notes.txt")
    except errors.EACCES:
        print("after chmod 700, bob gets EACCES — cached checks revoked")

    # --- the equivalence guarantee ----------------------------------------
    # Everything above behaves identically on the baseline kernel; only
    # the virtual time differs.  See repro.testing.DualKernel.
    print("\ndone; total virtual time:",
          f"{kernel.now_ns / 1e6:.3f} virtual ms")


if __name__ == "__main__":
    main()
