#!/usr/bin/env python3
"""Domain example: a maildir IMAP server on two kernels (paper §6.3).

Provisions maildir mailboxes, drives a mark/deliver workload against the
baseline and optimized kernels, and prints the throughput comparison —
the Figure 10 experiment as a script.

Run:  python examples/mail_server.py [mailbox_size]
"""

import sys as _sys

from repro import make_kernel
from repro.workloads import maildir


def run(mailbox_size: int) -> None:
    print(f"maildir benchmark: 10 mailboxes x {mailbox_size} messages")
    throughput = {}
    for profile in ("baseline", "optimized"):
        kernel = make_kernel(profile)
        throughput[profile] = maildir.run_benchmark(
            kernel, mailbox_size, operations=150)
        stats = kernel.stats
        print(f"  {profile:10s}: {throughput[profile]:8.1f} ops/s "
              f"(readdir cached: {stats.get('readdir_cached')}, "
              f"from FS: {stats.get('readdir_fs')}, "
              f"fastpath hits: {stats.get('fastpath_hit')})")
    gain = 100.0 * (throughput["optimized"] / throughput["baseline"] - 1)
    print(f"  optimized kernel serves {gain:+.1f}% more operations "
          f"(paper: +7.8% to +12.2%)")


def main() -> None:
    size = int(_sys.argv[1]) if len(_sys.argv) > 1 else 2000
    run(size)


if __name__ == "__main__":
    main()
