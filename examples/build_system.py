#!/usr/bin/env python3
"""Domain example: a build-system's view of the directory cache.

Replays a compiler-driver workload (the paper's ``make``): for every
source file, probe an include search path — mostly negative lookups —
then read the source and emit an object file.  Shows how negative
dentry caching absorbs the header-probing storm, and compares the
virtual time on both kernels.

Run:  python examples/build_system.py
"""

from repro import make_kernel
from repro.workloads import apps


def main() -> None:
    print("simulated `make` over a Linux-source-shaped tree\n")
    results = {}
    for profile in ("baseline", "optimized"):
        kernel = make_kernel(profile)
        app = apps.MakeWorkload()
        result = apps.run_app(kernel, app, warm=True)
        results[profile] = result
        print(f"{profile:10s}: {result.total_ns / 1e6:9.2f} virtual ms, "
              f"{result.lookups} lookups, "
              f"negative rate {100 * result.negative_rate:.1f}%, "
              f"hit rate {100 * result.component_hit_rate:.1f}%")
        counts = result.syscall_counts
        probes = counts.get("stat", 0)
        print(f"{'':10s}  ({probes} stat probes, "
              f"{counts.get('open', 0)} opens, "
              f"{counts.get('read', 0)} reads)")
    base, opt = results["baseline"], results["optimized"]
    gain = 100.0 * (1 - opt.total_ns / base.total_ns)
    print(f"\nend-to-end gain: {gain:+.2f}% "
          f"(compilation dominates, as the paper's ~0% for make)")

    # Isolate the path-lookup share, where the win actually lives:
    path_gain = 100.0 * (1 - opt.path_syscall_ns / base.path_syscall_ns)
    print(f"path-syscall-only gain: {path_gain:+.2f}% "
          f"(the header-probe storm is what gets faster)")


if __name__ == "__main__":
    main()
